package harness

import (
	"fmt"
	"io"
)

// FastTrackScaling measures the real (wall-clock, this machine) ingestion
// throughput of the always-on FASTTRACK backend behind the public
// front-end, sharded versus serialized. This is the companion to the
// Frontend experiment for detectors without sampling periods: FASTTRACK
// can never dismiss an access for lack of metadata (every access installs
// some, so the sampling flag is constantly set), but its own dominant
// case — an access repeating the variable's current epoch — is a
// guaranteed no-op, and the sharded mount serves it lock-free through
// detector.EpochFast. Everything else takes the sharded slow path: a
// shared epoch-lock hold plus the variable's shard lock. Serialized mode
// funnels every access through one exclusive mutex, so the speedup column
// isolates what teaching FASTTRACK the Sharded and EpochFast contracts
// bought.
//
// Unlike the simulator experiments this one measures this process on this
// hardware; numbers vary across machines, the shape (speedup > 1, growing
// with goroutines) should not.

// FastTrackConfig configures the always-on scaling measurement.
type FastTrackConfig struct {
	// Goroutines lists the parallelism levels to measure (default 1,2,4,8).
	Goroutines []int
	// Ops is the per-goroutine operation count (default 200_000).
	Ops int
	// SharedEvery makes one in N accesses touch a variable shared by all
	// goroutines (default 16).
	SharedEvery int
}

func (c *FastTrackConfig) fill() {
	if c.Goroutines == nil {
		c.Goroutines = []int{1, 2, 4, 8}
	}
	if c.Ops <= 0 {
		c.Ops = 200_000
	}
	if c.SharedEvery <= 0 {
		c.SharedEvery = 16
	}
}

// FastTrackRow is one parallelism level's measurement.
type FastTrackRow struct {
	Goroutines int
	// Base and Conc are the serialized and sharded front-end measures.
	Base, Conc Measure
	// Speedup is Conc.OpsPerSec / Base.OpsPerSec.
	Speedup float64
}

// FastTrackResult holds the always-on scaling table.
type FastTrackResult struct {
	Ops  int
	Rows []FastTrackRow
}

// FastTrackScaling runs the sharded-versus-serialized FASTTRACK
// measurement. It reuses the frontend experiment's workload and
// measurement harness, so the columns are directly comparable with the
// PACER scaling table. (The name avoids the FastTrack DetectorKind
// constant used by the simulator experiments.)
func FastTrackScaling(cfg FastTrackConfig) *FastTrackResult {
	cfg.fill()
	fcfg := FrontendConfig{
		Goroutines:  cfg.Goroutines,
		Ops:         cfg.Ops,
		SharedEvery: cfg.SharedEvery,
	}
	fcfg.fill()
	res := &FastTrackResult{Ops: fcfg.Ops}
	for _, g := range fcfg.Goroutines {
		// Baseline and sharded interleaved per level so thermal/load drift
		// hits both sides roughly equally.
		base := frontendRun(fcfg, g, "fasttrack", true, false)
		conc := frontendRun(fcfg, g, "fasttrack", false, false)
		res.Rows = append(res.Rows, FastTrackRow{
			Goroutines: g, Base: base, Conc: conc,
			Speedup: conc.OpsPerSec / base.OpsPerSec,
		})
	}
	return res
}

// Render prints the always-on scaling table.
func (f *FastTrackResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Always-on FASTTRACK ingestion throughput (real wall clock, %d ops/goroutine)\n", f.Ops)
	fmt.Fprintf(w, "%-11s  %15s  %15s  %8s  %11s  %11s  %10s\n",
		"goroutines", "serialized op/s", "sharded op/s", "speedup", "ser alloc/op", "shd alloc/op", "meta words")
	rule(w, 94)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-11d  %15.3e  %15.3e  %7.2fx  %11.4f  %12.4f  %10d\n",
			r.Goroutines, r.Base.OpsPerSec, r.Conc.OpsPerSec, r.Speedup,
			r.Base.AllocsPerOp, r.Conc.AllocsPerOp, r.Conc.MetaWords)
	}
}
