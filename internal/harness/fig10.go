package harness

import (
	"fmt"
	"io"

	"pacer/internal/workload"
)

// Fig10Series is one configuration's live-memory timeline.
type Fig10Series struct {
	Label string
	// Points are (normalized time, total live words) pairs.
	Points [][2]float64
	// Peak is the series' maximum total live words.
	Peak int
}

// Fig10Result reproduces Figure 10: total space over normalized time for
// one benchmark (the paper uses eclipse) under Base, OM only, PACER at
// several rates, LITERACE, and full tracking.
type Fig10Result struct {
	Bench  string
	Series []Fig10Series
}

// Fig10Configs lists the configurations measured.
var fig10Configs = []struct {
	label string
	kind  DetectorKind
	rate  float64
	instr bool
}{
	{"Base", NoDetector, 0, false},
	{"OM only", Pacer, 0, false},
	{"Pacer r=1%", Pacer, 0.01, true},
	{"Pacer r=3%", Pacer, 0.03, true},
	{"Pacer r=10%", Pacer, 0.10, true},
	{"Pacer r=25%", Pacer, 0.25, true},
	{"Pacer r=100%", Pacer, 1.00, true},
	{"LiteRace", LiteRace, 0, true},
}

// Fig10 records memory timelines: one trial per configuration, as in the
// paper ("averaging over multiple trials might smooth spikes").
func Fig10(b *workload.Spec, o Options) (*Fig10Result, error) {
	o.fill()
	out := &Fig10Result{Bench: b.Name}
	for _, c := range fig10Configs {
		t, err := RunTrial(TrialConfig{
			Bench: b, Kind: c.kind, Rate: c.rate,
			Seed: o.SeedBase, InstrumentAccesses: c.instr, MemTimeline: true, Nursery: o.Nursery,
		})
		if err != nil {
			return nil, err
		}
		s := Fig10Series{Label: c.label}
		for _, m := range t.Result.MemSamples {
			frac := float64(m.Event) / float64(t.Result.Events)
			s.Points = append(s.Points, [2]float64{frac, float64(m.Total())})
			if m.Total() > s.Peak {
				s.Peak = m.Total()
			}
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

func memSampleAt(s Fig10Series, frac float64) float64 {
	best := 0.0
	for _, p := range s.Points {
		if p[0] <= frac {
			best = p[1]
		}
	}
	return best
}

// Render prints each series' live memory at deciles of normalized time,
// plus its peak.
func (f *Fig10Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 10: Total live space over normalized time for %s (Kwords).\n", f.Bench)
	fmt.Fprintf(w, "%-14s", "config")
	for d := 1; d <= 10; d++ {
		fmt.Fprintf(w, " %6s", fmt.Sprintf("%d%%", d*10))
	}
	fmt.Fprintf(w, " %8s\n", "peak")
	rule(w, 14+7*10+9)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-14s", s.Label)
		for d := 1; d <= 10; d++ {
			fmt.Fprintf(w, " %6.1f", memSampleAt(s, float64(d)/10)/1000)
		}
		fmt.Fprintf(w, " %8.1f\n", float64(s.Peak)/1000)
	}
	fmt.Fprintln(w, "(Expected shape: PACER's space scales with r; LiteRace's does not.)")
}
