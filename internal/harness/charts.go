package harness

import (
	"fmt"
	"io"

	"pacer/internal/plot"
)

// Chart renders Figure 3 or 4 as an ASCII line chart with the
// proportionality diagonal.
func (a *AccuracyResult) Chart(w io.Writer, distinct bool) {
	fig, kind := 3, "dynamic"
	if distinct {
		fig, kind = 4, "distinct"
	}
	c := plot.Chart{
		Title:   fmt.Sprintf("Figure %d: detection rate vs sampling rate (%s races)", fig, kind),
		XLabel:  "specified sampling rate",
		Diag:    true,
		Percent: true,
		YMax:    1,
	}
	for _, b := range a.Benches {
		s := plot.Series{Name: b.Bench}
		for _, r := range AccuracyRates {
			m := b.Fig3
			if distinct {
				m = b.Fig4
			}
			s.Points = append(s.Points, [2]float64{r, m[r]})
		}
		c.Series = append(c.Series, s)
	}
	c.Render(w)
}

// Chart renders the slowdown curves of Figures 8/9.
func (s *ScalingResult) Chart(w io.Writer) {
	c := plot.Chart{
		Title:  fmt.Sprintf("Figure %d: slowdown vs sampling rate", s.Figure),
		XLabel: "sampling rate",
	}
	for _, b := range s.Benches {
		series := plot.Series{Name: b}
		for _, r := range s.Rates {
			series.Points = append(series.Points, [2]float64{r, s.Slowdown[b][r]})
		}
		c.Series = append(c.Series, series)
	}
	c.Render(w)
}

// Chart renders the Figure 10 space timeline.
func (f *Fig10Result) Chart(w io.Writer) {
	c := plot.Chart{
		Title:  fmt.Sprintf("Figure 10: live space over normalized time (%s, Kwords)", f.Bench),
		XLabel: "normalized time",
	}
	for _, s := range f.Series {
		series := plot.Series{Name: s.Label}
		for _, p := range s.Points {
			series.Points = append(series.Points, [2]float64{p[0], p[1] / 1000})
		}
		c.Series = append(c.Series, series)
	}
	c.Render(w)
}

// Chart renders the Figure 7 breakdown as bars.
func (f *Fig7Result) Chart(w io.Writer) {
	var labels []string
	var values []float64
	for _, r := range append(f.Rows, f.Avg) {
		for _, cfg := range []struct {
			name string
			v    float64
		}{{"om+sync", r.OMSync}, {"r=0%", r.R0}, {"r=1%", r.R1}, {"r=3%", r.R3}} {
			labels = append(labels, r.Bench+" "+cfg.name)
			values = append(values, cfg.v)
		}
	}
	plot.Bars(w, "Figure 7: overhead breakdown", labels, values,
		func(v float64) string { return fmt.Sprintf("%.0f%%", v*100) })
}
