package harness

import (
	"fmt"
	"io"
	"sort"

	"pacer/internal/stats"
	"pacer/internal/workload"
)

// AccuracyRates are the sampling rates swept by Figures 3-5.
var AccuracyRates = []float64{0.01, 0.03, 0.05, 0.10, 0.25, 0.50, 1.00}

// RaceRates is one evaluation race's measurement at one sampling rate.
type RaceRates struct {
	// AvgDynamic is the mean dynamic reports per trial.
	AvgDynamic float64
	// DistinctProb is the fraction of trials in which the race was
	// reported at least once.
	DistinctProb float64
}

// BenchAccuracy is one benchmark's detection-rate data.
type BenchAccuracy struct {
	Bench     string
	EvalRaces []int
	// PerRace[rate][raceID] is the race's measurement at that rate.
	PerRace map[float64]map[int]RaceRates
	// Fig3 and Fig4 are the unweighted mean detection rates per sampling
	// rate for dynamic and distinct races respectively, normalized to the
	// r = 100% baseline.
	Fig3, Fig4 map[float64]float64
	// Effective is the mean effective sampling rate observed per rate.
	Effective map[float64]float64
}

// AccuracyResult reproduces Figures 3, 4, and 5.
type AccuracyResult struct {
	Benches []*BenchAccuracy
}

// Accuracy runs the detection-rate sweep. The r = 100% point doubles as
// the normalization baseline and the evaluation-race selector (races
// detected in at least half of the fully sampled trials).
func Accuracy(o Options) (*AccuracyResult, error) {
	o.fill()
	out := &AccuracyResult{}
	for _, b := range o.Benches {
		ba, err := accuracyBench(b, o)
		if err != nil {
			return nil, err
		}
		out.Benches = append(out.Benches, ba)
	}
	return out, nil
}

func accuracyBench(b *workload.Spec, o Options) (*BenchAccuracy, error) {
	ba := &BenchAccuracy{
		Bench:     b.Name,
		PerRace:   map[float64]map[int]RaceRates{},
		Fig3:      map[float64]float64{},
		Fig4:      map[float64]float64{},
		Effective: map[float64]float64{},
	}
	type agg struct {
		dyn      int
		detected int
	}
	measure := func(rate float64, trials int, seedOff int64) (map[int]*agg, float64, error) {
		per := map[int]*agg{}
		effSum := 0.0
		for i := 0; i < trials; i++ {
			t, err := RunTrial(TrialConfig{
				Bench: b, Kind: Pacer, Rate: rate,
				Seed: o.SeedBase + seedOff + int64(i), InstrumentAccesses: true, Nursery: o.Nursery,
			})
			if err != nil {
				return nil, 0, err
			}
			effSum += t.EffectiveRate
			for id, n := range t.PerRace {
				a := per[id]
				if a == nil {
					a = &agg{}
					per[id] = a
				}
				a.dyn += n
				a.detected++
			}
		}
		return per, effSum / float64(trials), nil
	}

	// Baseline: fully sampled trials select evaluation races and provide
	// the denominators.
	baseTrials := o.trials(50)
	base, eff, err := measure(1.0, baseTrials, 0)
	if err != nil {
		return nil, err
	}
	ba.Effective[1.0] = eff
	half := (baseTrials + 1) / 2
	for id, a := range base {
		if a.detected >= half {
			ba.EvalRaces = append(ba.EvalRaces, id)
		}
	}
	sort.Ints(ba.EvalRaces)
	record := func(rate float64, per map[int]*agg, trials int) {
		m := map[int]RaceRates{}
		for _, id := range ba.EvalRaces {
			var rr RaceRates
			if a := per[id]; a != nil {
				rr.AvgDynamic = float64(a.dyn) / float64(trials)
				rr.DistinctProb = float64(a.detected) / float64(trials)
			}
			m[id] = rr
		}
		ba.PerRace[rate] = m
	}
	record(1.0, base, baseTrials)
	ba.Fig3[1.0], ba.Fig4[1.0] = 1.0, 1.0

	seedOff := int64(baseTrials)
	for _, rate := range AccuracyRates {
		if rate == 1.0 {
			continue
		}
		trials := o.trials(stats.NumTrials(rate))
		per, eff, err := measure(rate, trials, seedOff)
		if err != nil {
			return nil, err
		}
		seedOff += int64(trials)
		ba.Effective[rate] = eff
		record(rate, per, trials)
		var dynRates, distRates []float64
		for _, id := range ba.EvalRaces {
			b100 := ba.PerRace[1.0][id]
			r := ba.PerRace[rate][id]
			dynRates = append(dynRates, stats.Ratio(r.AvgDynamic, b100.AvgDynamic))
			distRates = append(distRates, stats.Ratio(r.DistinctProb, b100.DistinctProb))
		}
		ba.Fig3[rate] = stats.Mean(dynRates)
		ba.Fig4[rate] = stats.Mean(distRates)
	}
	return ba, nil
}

// RenderFig3 prints the dynamic-race detection-rate curve (Figure 3).
func (a *AccuracyResult) RenderFig3(w io.Writer) { a.renderCurve(w, 3, "dynamic", false) }

// RenderFig4 prints the distinct-race detection-rate curve (Figure 4).
func (a *AccuracyResult) RenderFig4(w io.Writer) { a.renderCurve(w, 4, "distinct", true) }

func (a *AccuracyResult) renderCurve(w io.Writer, fig int, kind string, distinct bool) {
	fmt.Fprintf(w, "Figure %d: PACER's accuracy on %s races (detection rate vs\n", fig, kind)
	fmt.Fprintln(w, "specified sampling rate; the proportionality guarantee is the diagonal).")
	fmt.Fprintf(w, "%-14s", "rate")
	for _, b := range a.Benches {
		fmt.Fprintf(w, " %12s", b.Bench)
	}
	fmt.Fprintf(w, " %12s\n", "ideal")
	rule(w, 14+13*(len(a.Benches)+1))
	for _, r := range AccuracyRates {
		fmt.Fprintf(w, "%-14s", fmt.Sprintf("r = %g%%", r*100))
		for _, b := range a.Benches {
			m := b.Fig3
			if distinct {
				m = b.Fig4
			}
			fmt.Fprintf(w, " %11.1f%%", m[r]*100)
		}
		fmt.Fprintf(w, " %11.1f%%\n", r*100)
	}
}

// RenderFig5 prints the per-distinct-race detection rates (Figure 5): for
// each benchmark and sampling rate, the evaluation races' detection rates
// sorted descending.
func (a *AccuracyResult) RenderFig5(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: PACER's per-distinct-race detection rate varying r.")
	fmt.Fprintln(w, "(Each line lists the evaluation races' detection rates, sorted.)")
	for _, b := range a.Benches {
		fmt.Fprintf(w, "\n%s (%d evaluation races)\n", b.Bench, len(b.EvalRaces))
		for _, r := range AccuracyRates {
			var rates []float64
			for _, id := range b.EvalRaces {
				rates = append(rates, b.PerRace[r][id].DistinctProb*100)
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
			fmt.Fprintf(w, "  r=%5.1f%%:", r*100)
			for _, x := range rates {
				fmt.Fprintf(w, " %5.1f", x)
			}
			fmt.Fprintln(w)
		}
	}
}
