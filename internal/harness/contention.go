package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"pacer"
)

// Contention measures the real (wall-clock, this machine) throughput of
// the always-on FASTTRACK backend on the workloads the sharded mount is
// weakest at: accesses the same-epoch mirrors cannot dismiss. Two mixes:
//
//   - shared-read: every analysis-bound access reads a variable shared by
//     all goroutines, so its read map is multi-entry, publishes no epoch
//     mirror, and (without the owned-access path) every reader serializes
//     on the variable's shard lock.
//   - sync-heavy: frequent instrumented lock operations, each an exclusive
//     epoch-lock hold plus a thread-epoch republication, interleaved with
//     shared reads — the mix that punishes a slow republication discipline.
//
// Each mix runs three ways: serialized (the single-mutex baseline),
// sharded with Options.DisableOwnedFastPath (shard locks only — what the
// mount was before the CAS read-map path), and the full sharded mount with
// owned-access updates. The last column is the headline: shared readers
// claim the variable's ownership word with one CompareAndSwap and update
// the read map in place, so throughput holds up where the locked mount
// collapses onto hot shard locks.
//
// Unlike the simulator experiments this one measures this process on this
// hardware; numbers vary across machines, the shape (sharded+CAS ahead of
// serialized at every level, and ahead of the locked mount on the
// shared-read mix) should not.

// ContentionMix is one access mix of the contention measurement.
type ContentionMix struct {
	// Name labels the mix in the rendered table.
	Name string
	// SharedEvery makes one in N analysis-bound accesses read a shared
	// variable (1 = every access).
	SharedEvery int
	// SyncEvery makes one in N operations a lock-guarded shared write
	// (acquire, write, release). Zero disables lock operations.
	SyncEvery int
}

// ContentionConfig configures the contention measurement.
type ContentionConfig struct {
	// Goroutines lists the parallelism levels to measure (default 1,2,4,8).
	Goroutines []int
	// Ops is the per-goroutine operation count (default 200_000).
	Ops int
	// Mixes lists the access mixes (default shared-read and sync-heavy).
	Mixes []ContentionMix
}

func (c *ContentionConfig) fill() {
	if c.Goroutines == nil {
		c.Goroutines = []int{1, 2, 4, 8}
	}
	if c.Ops <= 0 {
		c.Ops = 200_000
	}
	if c.Mixes == nil {
		c.Mixes = []ContentionMix{
			{Name: "shared-read", SharedEvery: 1, SyncEvery: 512},
			{Name: "sync-heavy", SharedEvery: 4, SyncEvery: 16},
		}
	}
}

// ContentionRow is one parallelism level's three-way measurement.
type ContentionRow struct {
	Goroutines int
	// Serial, Locked, CAS are the serialized mount, the sharded mount with
	// the owned-access path disabled, and the full sharded mount.
	Serial, Locked, CAS Measure
}

// ContentionMixResult holds one mix's table.
type ContentionMixResult struct {
	Mix  ContentionMix
	Rows []ContentionRow
}

// ContentionResult holds the contention tables.
type ContentionResult struct {
	Ops   int
	Mixes []ContentionMixResult
}

// contentionRun drives one (mix, goroutines, mount) configuration. The
// identifier setup mirrors frontendRun; the loop body differs in routing
// most reads at a small set of variables shared by every goroutine.
func contentionRun(cfg ContentionConfig, mix ContentionMix, goroutines int, serialized, disableOwned bool) Measure {
	d := pacer.New(pacer.Options{
		Algorithm:            "fasttrack",
		Seed:                 11,
		Serialized:           serialized,
		DisableOwnedFastPath: disableOwned,
	})
	main := d.NewThread()
	shared := make([]pacer.VarID, 8)
	for i := range shared {
		shared[i] = d.NewVarID()
	}
	guarded := d.NewVarID()
	m := d.NewMutex()
	workers := make([]pacer.ThreadID, goroutines)
	privates := make([][]pacer.VarID, goroutines)
	for g := range workers {
		workers[g] = d.Fork(main)
		privates[g] = make([]pacer.VarID, 8)
		for i := range privates[g] {
			privates[g][i] = d.NewVarID()
		}
	}
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for g, tid := range workers {
		wg.Add(1)
		go func(tid pacer.ThreadID, g int) {
			defer wg.Done()
			private := privates[g]
			site := pacer.SiteID(g * 1000)
			for i := 0; i < cfg.Ops; i++ {
				switch {
				case mix.SyncEvery > 0 && i%mix.SyncEvery == 0:
					m.Lock(tid)
					d.Write(tid, guarded, site)
					m.Unlock(tid)
				case i%mix.SharedEvery == 0:
					d.Read(tid, shared[i%len(shared)], site)
				default:
					d.Read(tid, private[i%len(private)], site)
				}
			}
		}(tid, g)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	totalOps := float64(goroutines) * float64(cfg.Ops)
	st := d.Stats()
	return Measure{
		OpsPerSec:   totalOps / elapsed,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / totalOps,
		MetaWords:   st.MetadataWords,
		Stats:       st,
	}
}

// Contention runs the three-way contention measurement for every mix.
func Contention(cfg ContentionConfig) *ContentionResult {
	cfg.fill()
	res := &ContentionResult{Ops: cfg.Ops}
	for _, mix := range cfg.Mixes {
		mr := ContentionMixResult{Mix: mix}
		for _, g := range cfg.Goroutines {
			// The three mounts interleave per level so thermal/load drift
			// hits all sides roughly equally.
			mr.Rows = append(mr.Rows, ContentionRow{
				Goroutines: g,
				Serial:     contentionRun(cfg, mix, g, true, false),
				Locked:     contentionRun(cfg, mix, g, false, true),
				CAS:        contentionRun(cfg, mix, g, false, false),
			})
		}
		res.Mixes = append(res.Mixes, mr)
	}
	return res
}

// Render prints one table per mix.
func (c *ContentionResult) Render(w io.Writer) {
	fmt.Fprintf(w, "FASTTRACK contention throughput (real wall clock, %d ops/goroutine)\n", c.Ops)
	for _, mr := range c.Mixes {
		fmt.Fprintf(w, "\nmix %s (shared read 1/%d, lock op 1/%d)\n",
			mr.Mix.Name, mr.Mix.SharedEvery, mr.Mix.SyncEvery)
		fmt.Fprintf(w, "%-11s  %15s  %15s  %15s  %8s  %11s\n",
			"goroutines", "serialized op/s", "shard-lock op/s", "sharded+CAS op/s", "speedup", "cas alloc/op")
		rule(w, 86)
		for _, r := range mr.Rows {
			fmt.Fprintf(w, "%-11d  %15.3e  %15.3e  %15.3e  %7.2fx  %11.4f\n",
				r.Goroutines, r.Serial.OpsPerSec, r.Locked.OpsPerSec, r.CAS.OpsPerSec,
				r.CAS.OpsPerSec/r.Serial.OpsPerSec, r.CAS.AllocsPerOp)
		}
	}
}
