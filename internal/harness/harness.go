// Package harness runs the paper's experiments (Section 5) on the
// simulator substrate and renders each table and figure. Every experiment
// has a Scale knob multiplying trial counts so that tests and quick runs
// stay cheap while `pacerbench -scale 1` reproduces the full protocol.
package harness

import (
	"fmt"
	"io"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/fasttrack"
	"pacer/internal/generic"
	"pacer/internal/literace"
	"pacer/internal/sim"
	"pacer/internal/workload"
)

// DetectorKind selects the analysis under test.
type DetectorKind int

const (
	// NoDetector runs the program uninstrumented (the Base configuration).
	NoDetector DetectorKind = iota
	// Pacer is the paper's contribution.
	Pacer
	// FastTrack is the full-tracking baseline.
	FastTrack
	// Generic is the O(n) vector clock baseline.
	Generic
	// LiteRace is the online LiteRace baseline.
	LiteRace
)

// String names the detector kind.
func (k DetectorKind) String() string {
	switch k {
	case NoDetector:
		return "base"
	case Pacer:
		return "pacer"
	case FastTrack:
		return "fasttrack"
	case Generic:
		return "generic"
	case LiteRace:
		return "literace"
	default:
		return "unknown"
	}
}

// TrialConfig describes one simulation trial of a benchmark.
type TrialConfig struct {
	Bench *workload.Spec
	Kind  DetectorKind
	// Rate is the specified sampling rate for Pacer (fraction).
	Rate float64
	Seed int64
	// InstrumentAccesses false gives the "OM + sync ops" configuration.
	InstrumentAccesses bool
	// LiteRaceBurst overrides LiteRace's burst length. The default of 5 is
	// the paper's burst of 1,000 rescaled to the models' per-(method,
	// thread) execution counts (thousands rather than millions), landing
	// the effective access sampling rate near the paper's ~1-3%.
	LiteRaceBurst int
	// MemTimeline records Figure 10 samples.
	MemTimeline bool
	// Nursery overrides the GC nursery size (default 1024 words).
	Nursery int
	// PacerOptions tunes the PACER algorithm (ablations).
	PacerOptions core.Options
}

// Trial is the outcome of one simulation trial.
type Trial struct {
	// PerRace maps race id → dynamic reports in this trial.
	PerRace map[int]int
	// EffectiveRate is the observed sampling rate (sync-op weighted).
	EffectiveRate float64
	// LiteRaceRate is LiteRace's effective access sampling rate.
	LiteRaceRate float64
	// Result is the raw simulation result.
	Result *sim.Result
}

// Dynamic returns the total dynamic race reports.
func (t *Trial) Dynamic() int {
	n := 0
	for _, c := range t.PerRace {
		n += c
	}
	return n
}

// Distinct returns the number of distinct races reported.
func (t *Trial) Distinct() int { return len(t.PerRace) }

// RunTrial executes one trial.
func RunTrial(cfg TrialConfig) (*Trial, error) {
	col := detector.NewCollector()
	var d detector.Detector
	var lr *literace.Detector
	switch cfg.Kind {
	case NoDetector:
	case Pacer:
		d = core.NewWithOptions(col.Report, cfg.PacerOptions)
	case FastTrack:
		d = fasttrack.New(col.Report)
	case Generic:
		d = generic.New(col.Report)
	case LiteRace:
		burst := cfg.LiteRaceBurst
		if burst == 0 {
			burst = 5
		}
		lr = literace.New(col.Report, literace.Options{
			BurstLength: burst, MinRate: 0.001, Backoff: 10, Seed: cfg.Seed + 1,
		})
		d = lr
	}
	nursery := cfg.Nursery
	if nursery == 0 {
		nursery = cfg.Bench.NurseryWords
	}
	if nursery == 0 {
		nursery = 1024
	}
	rate := cfg.Rate
	if cfg.Kind == FastTrack || cfg.Kind == Generic || cfg.Kind == LiteRace {
		rate = 0 // these detectors track everything; no sampling periods
	}
	res, err := sim.Run(cfg.Bench.Program(cfg.Seed), sim.Config{
		Seed:               cfg.Seed,
		Detector:           d,
		InstrumentAccesses: cfg.InstrumentAccesses,
		SampleTarget:       rate,
		NurseryWords:       nursery,
		MemTimeline:        cfg.MemTimeline,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s %s r=%g seed=%d: %w",
			cfg.Bench.Name, cfg.Kind, cfg.Rate, cfg.Seed, err)
	}
	t := &Trial{PerRace: make(map[int]int), EffectiveRate: res.EffectiveRate, Result: res}
	for _, r := range col.Dynamic {
		if id, ok := cfg.Bench.RaceOf(r.Var); ok {
			t.PerRace[id]++
		}
	}
	if lr != nil {
		t.LiteRaceRate = lr.EffectiveRate()
	}
	return t, nil
}

// Options configure an experiment run.
type Options struct {
	// Scale multiplies trial counts (1.0 = the paper's protocol; tests use
	// much smaller values). Trial counts never drop below 4.
	Scale float64
	// SeedBase offsets all trial seeds.
	SeedBase int64
	// Benches restricts the benchmark set (nil = all four).
	Benches []*workload.Spec
	// Nursery overrides the GC nursery size for every trial (words);
	// small workloads need a small nursery for sampling periods to occur.
	Nursery int
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Benches == nil {
		o.Benches = workload.All()
	}
}

func (o *Options) trials(n int) int {
	t := int(float64(n)*o.Scale + 0.5)
	return max(t, 4)
}

// rule prints a horizontal separator sized to the table.
func rule(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
