package harness

import (
	"fmt"
	"io"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/stats"
)

// AblationRow measures PACER with one design choice disabled.
type AblationRow struct {
	Config string
	// Overhead is the median simulated overhead at the experiment's rate.
	Overhead float64
	// FastJoinFrac is the fraction of non-sampling joins handled by the
	// version fast path.
	FastJoinFrac float64
	// SlowJoins and Clones are per-trial averages of O(n) work.
	SlowJoins, DeepCopies float64
	// MetaWords is the detector's final live metadata.
	MetaWords float64
}

// AblationResult isolates the contribution of each of PACER's non-sampling
// optimizations (versions, sharing, discarding) at a fixed sampling rate.
type AblationResult struct {
	Bench string
	Rate  float64
	Rows  []AblationRow
}

// Ablations runs the ablation study on the first configured benchmark at
// r = 3%.
func Ablations(o Options) (*AblationResult, error) {
	o.fill()
	b := o.Benches[0]
	const rate = 0.03
	out := &AblationResult{Bench: b.Name, Rate: rate}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"full PACER", core.Options{}},
		{"no version fast path", core.Options{DisableVersions: true}},
		{"no clock sharing", core.Options{DisableSharing: true}},
		{"no metadata discard", core.Options{DisableDiscard: true}},
		{"none of the three", core.Options{DisableVersions: true, DisableSharing: true, DisableDiscard: true}},
	}
	n := o.trials(10)
	for _, cfg := range configs {
		var ovs []float64
		row := AblationRow{Config: cfg.name}
		var fast, slow, deep, meta uint64
		var totalJoins uint64
		for i := 0; i < n; i++ {
			t, err := RunTrial(TrialConfig{
				Bench: b, Kind: Pacer, Rate: rate,
				Seed: o.SeedBase + int64(i), InstrumentAccesses: true,
				Nursery: o.Nursery, PacerOptions: cfg.opts,
			})
			if err != nil {
				return nil, err
			}
			ovs = append(ovs, t.Result.Overhead())
			c := t.Result.Counters
			fast += c.FastJoins[detector.NonSampling]
			slow += c.SlowJoins[detector.NonSampling]
			deep += c.DeepCopies[0] + c.DeepCopies[1]
			meta += uint64(t.Result.FinalMetaWords)
			totalJoins += c.FastJoins[detector.NonSampling] + c.SlowJoins[detector.NonSampling]
		}
		row.Overhead = stats.Median(ovs)
		if totalJoins > 0 {
			row.FastJoinFrac = float64(fast) / float64(totalJoins)
		}
		row.SlowJoins = float64(slow) / float64(n)
		row.DeepCopies = float64(deep) / float64(n)
		row.MetaWords = float64(meta) / float64(n)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the ablation table.
func (a *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation study: PACER on %s at r = %g%% (per-trial averages).\n", a.Bench, a.Rate*100)
	fmt.Fprintf(w, "%-22s %9s %11s %11s %11s %11s\n",
		"configuration", "overhead", "fast-join%", "slow joins", "deep copies", "meta words")
	rule(w, 80)
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-22s %8.0f%% %10.1f%% %11.0f %11.0f %11.0f\n",
			r.Config, r.Overhead*100, r.FastJoinFrac*100, r.SlowJoins, r.DeepCopies, r.MetaWords)
	}
	fmt.Fprintln(w, "(Each disabled optimization should cost overhead, O(n) operations,")
	fmt.Fprintln(w, "or metadata space; reports are identical except under no-discard.)")
}
