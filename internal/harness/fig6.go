package harness

import (
	"fmt"
	"io"
	"sort"

	"pacer/internal/workload"
)

// Fig6Result reproduces Figure 6: LITERACE's per-distinct-race detection
// rate for eclipse across many trials, showing that races in hot code are
// consistently missed while PACER's guarantee still covers them.
type Fig6Result struct {
	Bench     string
	Trials    int
	EvalRaces []int
	// Detections[id] counts trials in which race id was reported.
	Detections map[int]int
	// Hot[id] marks evaluation races planted in hot code.
	Hot map[int]bool
	// EffectiveRate is LiteRace's mean access sampling rate.
	EffectiveRate float64
	// NeverFound counts evaluation races never reported in any trial.
	NeverFound int
}

// Fig6 runs the LITERACE comparison on the given benchmark (the paper uses
// eclipse).
func Fig6(b *workload.Spec, o Options) (*Fig6Result, error) {
	o.fill()
	res := &Fig6Result{
		Bench:      b.Name,
		Detections: map[int]int{},
		Hot:        map[int]bool{},
	}

	// Evaluation races come from fully sampled PACER runs, as in the
	// accuracy experiments.
	baseTrials := o.trials(50)
	full := map[int]int{}
	for i := 0; i < baseTrials; i++ {
		t, err := RunTrial(TrialConfig{Bench: b, Kind: Pacer, Rate: 1.0, Seed: o.SeedBase + int64(i), InstrumentAccesses: true, Nursery: o.Nursery})
		if err != nil {
			return nil, err
		}
		for id := range t.PerRace {
			full[id]++
		}
	}
	half := (baseTrials + 1) / 2
	for id, n := range full {
		if n >= half {
			res.EvalRaces = append(res.EvalRaces, id)
			res.Hot[id] = b.Races[id].Hot
		}
	}
	sort.Ints(res.EvalRaces)

	res.Trials = o.trials(500)
	effSum := 0.0
	for i := 0; i < res.Trials; i++ {
		t, err := RunTrial(TrialConfig{
			Bench: b, Kind: LiteRace,
			Seed: o.SeedBase + 10_000 + int64(i), InstrumentAccesses: true,
		})
		if err != nil {
			return nil, err
		}
		effSum += t.LiteRaceRate
		for id := range t.PerRace {
			res.Detections[id]++
		}
	}
	res.EffectiveRate = effSum / float64(res.Trials)
	for _, id := range res.EvalRaces {
		if res.Detections[id] == 0 {
			res.NeverFound++
		}
	}
	return res, nil
}

// Render prints the per-race detection rates, hot races marked.
func (f *Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: LITERACE's per-distinct-race detection rate for %s\n", f.Bench)
	fmt.Fprintf(w, "(%d trials, effective access sampling rate %.2f%%).\n", f.Trials, f.EffectiveRate*100)
	type entry struct {
		id   int
		rate float64
		hot  bool
	}
	var es []entry
	for _, id := range f.EvalRaces {
		es = append(es, entry{id, float64(f.Detections[id]) / float64(f.Trials), f.Hot[id]})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].rate > es[j].rate })
	for _, e := range es {
		tag := "cold"
		if e.hot {
			tag = "HOT "
		}
		fmt.Fprintf(w, "  race %3d [%s]: detected in %5.1f%% of trials\n", e.id, tag, e.rate*100)
	}
	fmt.Fprintf(w, "%d of %d evaluation races never reported.\n", f.NeverFound, len(f.EvalRaces))
}
