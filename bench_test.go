// Benchmarks covering every table and figure of the paper's evaluation,
// plus ablations of PACER's individual design choices. Each benchmark
// measures the real wall-clock cost of the configuration the experiment
// uses and reports the experiment's headline metric via b.ReportMetric;
// `pacerbench` renders the full tables.
package pacer_test

import (
	"testing"

	"pacer"

	"pacer/internal/core"
	"pacer/internal/detector"
	"pacer/internal/djit"
	"pacer/internal/event"
	"pacer/internal/fasttrack"
	"pacer/internal/generic"
	"pacer/internal/goldilocks"
	"pacer/internal/harness"
	"pacer/internal/literace"
	"pacer/internal/lockset"
	"pacer/internal/sim"
	"pacer/internal/workload"
)

// benchTrial runs one simulated eclipse trial per iteration under the
// given configuration and reports simulated overhead.
func benchTrial(b *testing.B, kind harness.DetectorKind, rate float64, instr bool) {
	b.Helper()
	spec := workload.Eclipse()
	var lastOverhead float64
	var events uint64
	for i := 0; i < b.N; i++ {
		t, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: kind, Rate: rate,
			Seed: int64(i), InstrumentAccesses: instr,
		})
		if err != nil {
			b.Fatal(err)
		}
		lastOverhead = t.Result.Overhead()
		events = t.Result.Events
	}
	b.ReportMetric(lastOverhead*100, "sim-overhead-%")
	b.ReportMetric(float64(events), "events/trial")
}

// BenchmarkTable1SamplingController exercises the GC-driven sampling
// controller at r = 3% (Table 1's effective-vs-specified rates).
func BenchmarkTable1SamplingController(b *testing.B) {
	spec := workload.Eclipse()
	eff := 0.0
	for i := 0; i < b.N; i++ {
		t, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: harness.Pacer, Rate: 0.03,
			Seed: int64(i), InstrumentAccesses: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		eff += t.EffectiveRate
	}
	b.ReportMetric(eff/float64(b.N)*100, "effective-rate-%")
}

// BenchmarkTable2FullTrackingTrial runs the fully sampled trials that
// characterize each benchmark's races (Table 2).
func BenchmarkTable2FullTrackingTrial(b *testing.B) {
	spec := workload.Eclipse()
	distinct := 0
	for i := 0; i < b.N; i++ {
		t, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: harness.Pacer, Rate: 1.0,
			Seed: int64(i), InstrumentAccesses: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		distinct = t.Distinct()
	}
	b.ReportMetric(float64(distinct), "distinct-races")
}

// BenchmarkFig3DetectionRate runs the sampled trials behind the
// detection-rate curves (Figures 3-5) at r = 5%.
func BenchmarkFig3DetectionRate(b *testing.B) {
	spec := workload.Eclipse()
	dyn := 0
	for i := 0; i < b.N; i++ {
		t, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: harness.Pacer, Rate: 0.05,
			Seed: int64(i), InstrumentAccesses: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		dyn += t.Dynamic()
	}
	b.ReportMetric(float64(dyn)/float64(b.N), "dynamic-races/trial")
}

// BenchmarkFig4DistinctDetection measures the same trials' distinct-race
// yield (Figure 4).
func BenchmarkFig4DistinctDetection(b *testing.B) {
	spec := workload.Eclipse()
	distinct := 0
	for i := 0; i < b.N; i++ {
		t, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: harness.Pacer, Rate: 0.05,
			Seed: int64(i), InstrumentAccesses: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		distinct += t.Distinct()
	}
	b.ReportMetric(float64(distinct)/float64(b.N), "distinct-races/trial")
}

// BenchmarkFig5PerRaceTrial is the per-race variant (Figure 5): same
// trials on a second benchmark (xalan).
func BenchmarkFig5PerRaceTrial(b *testing.B) {
	spec := workload.Xalan()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: harness.Pacer, Rate: 0.10,
			Seed: int64(i), InstrumentAccesses: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6LiteRace runs the online LiteRace comparison trials.
func BenchmarkFig6LiteRace(b *testing.B) {
	spec := workload.Eclipse()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: harness.LiteRace,
			Seed: int64(i), InstrumentAccesses: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 7's four configurations.
func BenchmarkFig7OverheadOMSync(b *testing.B) { benchTrial(b, harness.Pacer, 0, false) }
func BenchmarkFig7OverheadR0(b *testing.B)     { benchTrial(b, harness.Pacer, 0, true) }
func BenchmarkFig7OverheadR1(b *testing.B)     { benchTrial(b, harness.Pacer, 0.01, true) }
func BenchmarkFig7OverheadR3(b *testing.B)     { benchTrial(b, harness.Pacer, 0.03, true) }

// Figure 8's scaling sweep endpoints (plus FastTrack, the 100%-tracking
// comparator).
func BenchmarkFig8ScalingR25(b *testing.B)      { benchTrial(b, harness.Pacer, 0.25, true) }
func BenchmarkFig8ScalingR100(b *testing.B)     { benchTrial(b, harness.Pacer, 1.00, true) }
func BenchmarkFig8FastTrackFull(b *testing.B)   { benchTrial(b, harness.FastTrack, 0, true) }
func BenchmarkFig9ScalingZoomR5(b *testing.B)   { benchTrial(b, harness.Pacer, 0.05, true) }
func BenchmarkFig9ScalingZoomR10(b *testing.B)  { benchTrial(b, harness.Pacer, 0.10, true) }
func BenchmarkGenericBaselineFull(b *testing.B) { benchTrial(b, harness.Generic, 0, true) }

// BenchmarkFig10SpaceTimeline measures the memory-accounting run and
// reports the peak metadata footprint.
func BenchmarkFig10SpaceTimeline(b *testing.B) {
	spec := workload.Eclipse()
	peak := 0
	for i := 0; i < b.N; i++ {
		t, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: harness.Pacer, Rate: 0.03,
			Seed: int64(i), InstrumentAccesses: true, MemTimeline: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range t.Result.MemSamples {
			if m.MetaWords > peak {
				peak = m.MetaWords
			}
		}
	}
	b.ReportMetric(float64(peak), "peak-meta-words")
}

// BenchmarkTable3OpCounts measures the r = 3% configuration and reports
// the fraction of non-sampling joins handled by the version fast path.
func BenchmarkTable3OpCounts(b *testing.B) {
	spec := workload.Eclipse()
	var fastFrac float64
	for i := 0; i < b.N; i++ {
		t, err := harness.RunTrial(harness.TrialConfig{
			Bench: spec, Kind: harness.Pacer, Rate: 0.03,
			Seed: int64(i), InstrumentAccesses: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		c := t.Result.Counters
		total := c.FastJoins[detector.NonSampling] + c.SlowJoins[detector.NonSampling]
		if total > 0 {
			fastFrac = float64(c.FastJoins[detector.NonSampling]) / float64(total)
		}
	}
	b.ReportMetric(fastFrac*100, "fast-join-%")
}

// --- Raw detector throughput over identical event streams -------------

// benchTrace is a shared pre-generated racy trace.
var benchTrace = event.Generate(event.GenConfig{
	Threads: 8, Vars: 64, Locks: 8, Volatiles: 4,
	Steps: 30_000, PGuarded: 0.7, PWrite: 0.35, Seed: 42,
})

// benchSampledTrace interleaves 3%-duty sampling windows.
var benchSampledTrace = event.Generate(event.GenConfig{
	Threads: 8, Vars: 64, Locks: 8, Volatiles: 4,
	Steps: 30_000, PGuarded: 0.7, PWrite: 0.35, PSample: 0.005, Seed: 42,
})

func replayBench(b *testing.B, mk func() detector.Detector, tr event.Trace) {
	b.Helper()
	b.ReportAllocs()
	events := 0
	for i := 0; i < b.N; i++ {
		d := mk()
		detector.Replay(d, tr)
		events += len(tr)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkThroughputPacerSampled(b *testing.B) {
	replayBench(b, func() detector.Detector { return core.New(nil) }, benchSampledTrace)
}

func BenchmarkThroughputPacerNeverSampling(b *testing.B) {
	replayBench(b, func() detector.Detector { return core.New(nil) }, benchTrace)
}

func BenchmarkThroughputPacerAlwaysSampling(b *testing.B) {
	tr := append(event.Trace{{Kind: event.SampleBegin}}, benchTrace...)
	replayBench(b, func() detector.Detector { return core.New(nil) }, tr)
}

func BenchmarkThroughputFastTrack(b *testing.B) {
	replayBench(b, func() detector.Detector { return fasttrack.New(nil) }, benchTrace)
}

func BenchmarkThroughputGeneric(b *testing.B) {
	replayBench(b, func() detector.Detector { return generic.New(nil) }, benchTrace)
}

func BenchmarkThroughputDjit(b *testing.B) {
	replayBench(b, func() detector.Detector { return djit.New(nil) }, benchTrace)
}

func BenchmarkThroughputLockset(b *testing.B) {
	replayBench(b, func() detector.Detector { return lockset.New(nil) }, benchTrace)
}

func BenchmarkThroughputGoldilocks(b *testing.B) {
	replayBench(b, func() detector.Detector { return goldilocks.New(nil) }, benchTrace)
}

func BenchmarkThroughputLiteRace(b *testing.B) {
	replayBench(b, func() detector.Detector {
		return literace.New(nil, literace.DefaultOptions())
	}, benchTrace)
}

// --- Ablations of DESIGN.md's called-out design choices ----------------

func BenchmarkAblationVersionsOn(b *testing.B) {
	replayBench(b, func() detector.Detector { return core.New(nil) }, benchSampledTrace)
}

func BenchmarkAblationVersionsOff(b *testing.B) {
	replayBench(b, func() detector.Detector {
		return core.NewWithOptions(nil, core.Options{DisableVersions: true})
	}, benchSampledTrace)
}

func BenchmarkAblationSharingOff(b *testing.B) {
	replayBench(b, func() detector.Detector {
		return core.NewWithOptions(nil, core.Options{DisableSharing: true})
	}, benchSampledTrace)
}

func BenchmarkAblationDiscardOff(b *testing.B) {
	d := core.NewWithOptions(nil, core.Options{DisableDiscard: true})
	detector.Replay(d, benchSampledTrace)
	words := d.MetadataWords()
	replayBench(b, func() detector.Detector {
		return core.NewWithOptions(nil, core.Options{DisableDiscard: true})
	}, benchSampledTrace)
	b.ReportMetric(float64(words), "meta-words")
}

func BenchmarkAblationEpochFastPathOff(b *testing.B) {
	replayBench(b, func() detector.Detector {
		return fasttrack.NewWithOptions(nil, fasttrack.Options{DisableEpochFastPath: true})
	}, benchTrace)
}

func BenchmarkAblationKeepReadEpochOnWrite(b *testing.B) {
	replayBench(b, func() detector.Detector {
		return fasttrack.NewWithOptions(nil, fasttrack.Options{KeepReadEpochOnWrite: true})
	}, benchTrace)
}

// BenchmarkPublicAPI measures the embeddable detector's per-operation cost
// through the thread-safe facade.
func BenchmarkPublicAPI(b *testing.B) {
	d := pacer.New(pacer.Options{SamplingRate: 0.03, PeriodOps: 4096})
	t0 := d.NewThread()
	v := d.NewVarID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(t0, v, 1)
	}
}

// benchFrontendParallel measures aggregate facade throughput under
// GOMAXPROCS-parallel load: each goroutine gets its own registered thread
// and mostly touches its own variables, the fast-path-dominant pattern the
// concurrent front-end is built for. Run with -cpu to sweep parallelism.
func benchFrontendParallel(b *testing.B, serialized bool) {
	b.Helper()
	d := pacer.New(pacer.Options{SamplingRate: 0.01, PeriodOps: 4096, Serialized: serialized})
	main := d.NewThread()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tid := d.Fork(main)
		v := d.NewVarID()
		i := 0
		for pb.Next() {
			if i&7 == 0 {
				d.Write(tid, v, 1)
			} else {
				d.Read(tid, v, 2)
			}
			i++
		}
	})
}

// BenchmarkFrontendParallel is the concurrent sharded front-end;
// BenchmarkFrontendParallelSerialized is the single-mutex baseline the
// speedup claims are measured against (see pacerbench -experiment
// frontend for the aggregate table).
func BenchmarkFrontendParallel(b *testing.B)           { benchFrontendParallel(b, false) }
func BenchmarkFrontendParallelSerialized(b *testing.B) { benchFrontendParallel(b, true) }

// BenchmarkSimulatorOverhead measures the bare simulator (no detector).
func BenchmarkSimulatorOverhead(b *testing.B) {
	spec := workload.Eclipse()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(spec.Program(int64(i)), sim.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
