// Happens-before semantics tests for the sync.go wrappers: the edges each
// primitive must create, and — just as important — the edges it must NOT
// create. All run at rate 1.0 so every access is tracked and any missing
// or spurious edge shows up deterministically.
package pacer_test

import (
	"sync"
	"testing"

	"pacer"
)

// TestRWMutexReadersUnorderedWithEachOther: holding the read lock must not
// order readers with one another — a write slipped in under RLock races
// with another reader's access, exactly as with the real primitive.
func TestRWMutexReadersUnorderedWithEachOther(t *testing.T) {
	races := 0
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(pacer.Race) { races++ }})
	main := d.NewThread()
	r1 := d.Fork(main)
	r2 := d.Fork(main)
	rw := d.NewRWMutex()
	data := d.NewVarID()

	rw.RLock(r1)
	d.Write(r1, data, 1) // a write under the read lock: a bug RLock must not hide
	rw.RUnlock(r1)
	rw.RLock(r2)
	d.Read(r2, data, 2)
	rw.RUnlock(r2)
	if races != 1 {
		t.Fatalf("reader-reader conflict: races = %d, want 1 (RLock must not order readers)", races)
	}
}

// TestRWMutexReadersOrderedAgainstWriters: the same reader-side write IS
// ordered against a subsequent writer (RUnlock publishes to the next
// Lock), and a writer's write is ordered against subsequent readers.
func TestRWMutexReadersOrderedAgainstWriters(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(r pacer.Race) {
		t.Errorf("false positive %v", r)
	}})
	main := d.NewThread()
	r1 := d.Fork(main)
	r2 := d.Fork(main)
	rw := d.NewRWMutex()
	data := d.NewVarID()

	rw.RLock(r1)
	d.Write(r1, data, 1)
	rw.RUnlock(r1)
	// Writer after the reader: ordered by rPub.
	rw.Lock(main)
	d.Write(main, data, 2)
	rw.Unlock(main)
	// Reader after the writer: ordered by wPub.
	rw.RLock(r2)
	d.Read(r2, data, 3)
	rw.RUnlock(r2)
}

// TestWaitGroupDoneWaitSuppressesFalseRaces: with real goroutines and full
// sampling, every worker write published through Done is ordered before
// the waiter's reads — zero reports.
func TestWaitGroupDoneWaitSuppressesFalseRaces(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(r pacer.Race) {
		t.Errorf("false positive %v", r)
	}})
	main := d.NewThread()
	wg := d.NewWaitGroup()
	vars := make([]pacer.VarID, 6)
	for i := range vars {
		vars[i] = d.NewVarID()
	}
	var hwg sync.WaitGroup
	for i, v := range vars {
		tid := d.Fork(main)
		wg.Add(1)
		hwg.Add(1)
		go func(tid pacer.ThreadID, v pacer.VarID, i int) {
			defer hwg.Done()
			d.Write(tid, v, pacer.SiteID(i))
			wg.Done(tid)
		}(tid, v, i)
	}
	hwg.Wait()
	wg.Wait(main)
	for _, v := range vars {
		d.Read(main, v, 99)
	}
}

// TestWaitGroupEdgeIsOnlyThroughWait: the Done edge must flow only to
// threads that Wait — a bystander that never waits still races with the
// workers' writes.
func TestWaitGroupEdgeIsOnlyThroughWait(t *testing.T) {
	races := 0
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(pacer.Race) { races++ }})
	main := d.NewThread()
	bystander := d.Fork(main)
	worker := d.Fork(main)
	wg := d.NewWaitGroup()
	v := d.NewVarID()
	wg.Add(1)
	d.Write(worker, v, 1)
	wg.Done(worker)
	wg.Wait(main)
	d.Read(main, v, 2) // ordered: no race
	if races != 0 {
		t.Fatalf("waiter read raced (%d) despite Done→Wait edge", races)
	}
	d.Read(bystander, v, 3) // never waited: races
	if races != 1 {
		t.Fatalf("bystander read: races = %d, want 1", races)
	}
}
