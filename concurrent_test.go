// Stress and statistical tests of the concurrent front-end through the
// public API. The stress tests are meant to run under `go test -race`
// (CI does) so the Go race detector audits the ingestion layer itself;
// their assertions check operation conservation — nothing the application
// issued is lost or double-counted across the lock-free fast path, the
// sharded slow path, and the serialized sync path.
package pacer_test

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"pacer"
)

// TestParallelStressStatsConservation hammers one detector from many
// goroutines with a fast-path-heavy mix and checks that Stats sees exactly
// the issued operation counts: Reads and Writes observed == issued.
func TestParallelStressStatsConservation(t *testing.T) {
	const goroutines = 8
	const opsPer = 4000
	d := pacer.New(pacer.Options{SamplingRate: 0.2, PeriodOps: 256, Seed: 3})
	main := d.NewThread()
	shared := d.NewVarID()
	m := d.NewMutex()
	var issuedReads, issuedWrites atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		tid := d.Fork(main)
		wg.Add(1)
		go func(tid pacer.ThreadID, g int) {
			defer wg.Done()
			private := d.NewVarID()
			for i := 0; i < opsPer; i++ {
				switch i % 8 {
				case 0:
					d.Write(tid, shared, pacer.SiteID(g))
					issuedWrites.Add(1)
				case 1:
					m.Lock(tid)
					d.Read(tid, shared, pacer.SiteID(g+100))
					m.Unlock(tid)
					issuedReads.Add(1)
				case 2, 3:
					d.Write(tid, private, pacer.SiteID(g+200))
					issuedWrites.Add(1)
				default:
					d.Read(tid, private, pacer.SiteID(g+300))
					issuedReads.Add(1)
				}
			}
		}(tid, g)
	}
	wg.Wait()
	s := d.Stats()
	if s.Reads != issuedReads.Load() {
		t.Errorf("Stats.Reads = %d, issued %d", s.Reads, issuedReads.Load())
	}
	if s.Writes != issuedWrites.Load() {
		t.Errorf("Stats.Writes = %d, issued %d", s.Writes, issuedWrites.Load())
	}
	if s.FastPathReads == 0 || s.FastPathWrites == 0 {
		t.Error("lock-free fast path never taken under a 0.2 rate")
	}
	if s.SyncOps == 0 {
		t.Error("sync ops not counted")
	}
}

// TestParallelStressAllPrimitives drives every public primitive — Read,
// Write, Mutex, RWMutex, WaitGroup, Atomic, Shared, Stats, Sampling —
// from concurrent goroutines while periods roll rapidly. The assertions
// are conservation and the data value itself; under -race this is also the
// memory-safety proof for the whole facade.
func TestParallelStressAllPrimitives(t *testing.T) {
	const goroutines = 8
	const iters = 300
	d := pacer.New(pacer.Options{SamplingRate: 0.4, PeriodOps: 64, Seed: 5, Shards: 16})
	main := d.NewThread()
	m := d.NewMutex()
	rw := d.NewRWMutex()
	wgD := d.NewWaitGroup()
	flag := pacer.NewAtomic(d, 0)
	counter := pacer.NewShared(d, 0)
	gauge := pacer.NewShared(d, 0)
	var issued atomic.Uint64 // reads + writes
	var hwg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		tid := d.Fork(main)
		wgD.Add(1)
		hwg.Add(1)
		go func(tid pacer.ThreadID, g int) {
			defer hwg.Done()
			private := d.NewVarID()
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					m.Lock(tid)
					counter.Update(tid, 1, func(x int) int { return x + 1 })
					m.Unlock(tid)
					issued.Add(2) // Update = read + write
				case 1:
					rw.RLock(tid)
					gauge.Load(tid, 2)
					rw.RUnlock(tid)
					issued.Add(1)
				case 2:
					rw.Lock(tid)
					gauge.Store(tid, 3, i)
					rw.Unlock(tid)
					issued.Add(1)
				case 3:
					flag.Store(tid, i)
					_ = d.Sampling()
				default:
					d.Write(tid, private, 4)
					d.Read(tid, private, 5)
					issued.Add(2)
				}
			}
			wgD.Done(tid)
		}(tid, g)
	}
	// Main polls Stats concurrently with the workers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = d.Stats()
			}
		}
	}()
	hwg.Wait()
	close(done)
	wgD.Wait(main)
	if got := counter.Load(main, 9); got != goroutines*iters/5 {
		t.Errorf("counter = %d, want %d", got, goroutines*iters/5)
	}
	s := d.Stats()
	if s.Reads+s.Writes != issued.Load()+1 { // +1: the counter.Load above
		t.Errorf("Reads+Writes = %d, issued %d", s.Reads+s.Writes, issued.Load()+1)
	}
}

// TestSerializedModeStillThreadSafe checks the Serialized compatibility
// mode under the same concurrent load (it should simply be slower, never
// unsafe or lossy).
func TestSerializedModeStillThreadSafe(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 0.3, PeriodOps: 128, Serialized: true})
	main := d.NewThread()
	v := d.NewVarID()
	var issued atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		tid := d.Fork(main)
		wg.Add(1)
		go func(tid pacer.ThreadID) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				d.Write(tid, v, 1)
				issued.Add(1)
			}
		}(tid)
	}
	wg.Wait()
	if s := d.Stats(); s.Writes != issued.Load() {
		t.Errorf("serialized mode lost writes: %d != %d", s.Writes, issued.Load())
	}
}

// TestStatisticalProportionality is the paper's central guarantee measured
// empirically through the public API: across many independent trials with
// fixed seeds, a one-shot race is detected with probability equal to the
// sampling rate. The trial count puts a binomial confidence interval
// around the expected rate; the test fails only outside ±4.5σ
// (false-failure probability ≈ 7e-6).
func TestStatisticalProportionality(t *testing.T) {
	const rate = 0.2
	const trials = 2000
	detected := 0
	for i := 0; i < trials; i++ {
		got := false
		d := pacer.New(pacer.Options{
			SamplingRate: rate,
			PeriodOps:    64,
			Seed:         int64(i + 1),
			OnRace:       func(pacer.Race) { got = true },
		})
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		v := d.NewVarID()
		pad := d.NewVarID()
		// Deterministic per-trial padding places the racy pair at a varying
		// offset within the period structure.
		for j := 0; j < 30+(i*53)%190; j++ {
			d.Read(t0, pad, 9)
		}
		d.Write(t0, v, 1)
		d.Write(t1, v, 2)
		if got {
			detected++
		}
	}
	p := float64(detected) / trials
	sigma := math.Sqrt(rate * (1 - rate) / trials)
	if math.Abs(p-rate) > 4.5*sigma {
		t.Errorf("detection rate %.4f outside %.2f ± %.4f (4.5σ, %d trials)",
			p, rate, 4.5*sigma, trials)
	}
}
