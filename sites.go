package pacer

import (
	"fmt"
	"strings"
)

// The label tables live behind their own small lock (labelMu), not the
// epoch lock: labeling and report rendering must never contend with the
// sharded ingestion hot path, and Describe is safe to call from an OnRace
// callback (which runs with a shard lock held).

// Frame is one resolved stack frame of a program site. Instrumentation
// front-ends (pacergo's runtime shim, or any custom integration) register
// the frames behind each SiteID so race reports carry source locations
// instead of numeric identifiers; Frame 0 is the access itself and later
// frames walk outward through its callers.
type Frame struct {
	// Function is the fully qualified function name, e.g. "main.worker".
	Function string
	// File and Line locate the call site in the original source.
	File string
	Line int
}

// String renders the frame as "file:line (function)"; the function part is
// omitted when unknown.
func (f Frame) String() string {
	loc := fmt.Sprintf("%s:%d", f.File, f.Line)
	if f.Function == "" {
		return loc
	}
	return loc + " (" + f.Function + ")"
}

// SiteFrames associates a resolved call stack with a program site. The
// first frame is the access itself; if no SiteLabel was registered for s,
// that frame also becomes the site's display label.
func (p *Detector) SiteFrames(s SiteID, frames []Frame) {
	p.labelMu.Lock()
	defer p.labelMu.Unlock()
	if p.siteFrames == nil {
		p.siteFrames = make(map[SiteID][]Frame)
	}
	cp := make([]Frame, len(frames))
	copy(cp, frames)
	p.siteFrames[s] = cp
}

// FramesOf returns the stack registered for s by SiteFrames, or nil. The
// returned slice is a copy; callers may keep it.
func (p *Detector) FramesOf(s SiteID) []Frame {
	p.labelMu.RLock()
	defer p.labelMu.RUnlock()
	frames := p.siteFrames[s]
	if frames == nil {
		return nil
	}
	cp := make([]Frame, len(frames))
	copy(cp, frames)
	return cp
}

// DescribeStacks renders a race like Describe and appends the registered
// stack of each access, one frame per line, when SiteFrames registered
// one. Reports without registered stacks render exactly as Describe.
func (p *Detector) DescribeStacks(r Race) string {
	var b strings.Builder
	b.WriteString(p.Describe(r))
	p.labelMu.RLock()
	defer p.labelMu.RUnlock()
	for i, s := range [2]SiteID{r.FirstSite, r.SecondSite} {
		frames := p.siteFrames[s]
		if len(frames) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n  access %d at %s:", i+1, p.siteName(s))
		for _, f := range frames {
			b.WriteString("\n    ")
			b.WriteString(f.String())
		}
	}
	return b.String()
}

// SiteLabel associates a human-readable label with a program site, so race
// reports can be rendered in terms of source locations or logical
// operation names instead of numeric identifiers.
func (p *Detector) SiteLabel(s SiteID, label string) {
	p.labelMu.Lock()
	defer p.labelMu.Unlock()
	if p.siteLabels == nil {
		p.siteLabels = make(map[SiteID]string)
	}
	p.siteLabels[s] = label
}

// VarLabel associates a human-readable label with a variable.
func (p *Detector) VarLabel(v VarID, label string) {
	p.labelMu.Lock()
	defer p.labelMu.Unlock()
	if p.varLabels == nil {
		p.varLabels = make(map[VarID]string)
	}
	p.varLabels[v] = label
}

// siteName returns s's label; callers hold labelMu (shared). A site with
// no explicit label but a registered stack displays as its top frame.
func (p *Detector) siteName(s SiteID) string {
	if l, ok := p.siteLabels[s]; ok {
		return l
	}
	if frames := p.siteFrames[s]; len(frames) > 0 {
		return frames[0].String()
	}
	return fmt.Sprintf("site %d", s)
}

// Describe renders a race using any registered site and variable labels:
//
//	data race on `account.balance`: write at deposit() vs read at audit()
func (p *Detector) Describe(r Race) string {
	p.labelMu.RLock()
	defer p.labelMu.RUnlock()
	varName := fmt.Sprintf("var %d", r.Var)
	if l, ok := p.varLabels[r.Var]; ok {
		varName = l
	}
	var first, second string
	switch r.Kind {
	case WriteWrite:
		first, second = "write", "write"
	case WriteRead:
		first, second = "write", "read"
	case ReadWrite:
		first, second = "read", "write"
	}
	return fmt.Sprintf("data race on %s: %s at %s (thread %d) vs %s at %s (thread %d)",
		varName, first, p.siteName(r.FirstSite), r.FirstThread,
		second, p.siteName(r.SecondSite), r.SecondThread)
}
