package pacer

import "fmt"

// The label tables live behind their own small lock (labelMu), not the
// epoch lock: labeling and report rendering must never contend with the
// sharded ingestion hot path, and Describe is safe to call from an OnRace
// callback (which runs with a shard lock held).

// SiteLabel associates a human-readable label with a program site, so race
// reports can be rendered in terms of source locations or logical
// operation names instead of numeric identifiers.
func (p *Detector) SiteLabel(s SiteID, label string) {
	p.labelMu.Lock()
	defer p.labelMu.Unlock()
	if p.siteLabels == nil {
		p.siteLabels = make(map[SiteID]string)
	}
	p.siteLabels[s] = label
}

// VarLabel associates a human-readable label with a variable.
func (p *Detector) VarLabel(v VarID, label string) {
	p.labelMu.Lock()
	defer p.labelMu.Unlock()
	if p.varLabels == nil {
		p.varLabels = make(map[VarID]string)
	}
	p.varLabels[v] = label
}

// siteName returns s's label; callers hold labelMu (shared).
func (p *Detector) siteName(s SiteID) string {
	if l, ok := p.siteLabels[s]; ok {
		return l
	}
	return fmt.Sprintf("site %d", s)
}

// Describe renders a race using any registered site and variable labels:
//
//	data race on `account.balance`: write at deposit() vs read at audit()
func (p *Detector) Describe(r Race) string {
	p.labelMu.RLock()
	defer p.labelMu.RUnlock()
	varName := fmt.Sprintf("var %d", r.Var)
	if l, ok := p.varLabels[r.Var]; ok {
		varName = l
	}
	var first, second string
	switch r.Kind {
	case WriteWrite:
		first, second = "write", "write"
	case WriteRead:
		first, second = "write", "read"
	case ReadWrite:
		first, second = "read", "write"
	}
	return fmt.Sprintf("data race on %s: %s at %s (thread %d) vs %s at %s (thread %d)",
		varName, first, p.siteName(r.FirstSite), r.FirstThread,
		second, p.siteName(r.SecondSite), r.SecondThread)
}
