package pacer

import (
	"io"
	"sync"

	"pacer/internal/event"
)

// TraceStream adapts the binary streaming trace encoder to
// Options.TraceSink, so production recordings stream to an io.Writer
// (typically a file) with bounded memory instead of accumulating in a
// slice. Wire its Record method in as the sink and Close it when the
// recording ends:
//
//	ts, err := pacer.StreamSink(f)
//	d := pacer.New(pacer.Options{TraceSink: ts.Record, ...})
//	...
//	err = ts.Close() // writes the end sentinel and flushes
//
// The resulting file is readable by event.ReadAnyTrace and by
// cmd/racereplay (replay and stat accept both trace formats). Encoding
// errors are sticky: the first one stops the recording and is reported by
// Err and Close, which keeps the detector's sink callback non-blocking
// and error-free on the hot path.
type TraceStream struct {
	mu     sync.Mutex
	sw     *event.StreamWriter
	closed bool
	err    error
}

// StreamSink starts a streaming trace on w and returns the adapter. The
// stream header is written immediately.
func StreamSink(w io.Writer) (*TraceStream, error) {
	sw, err := event.NewStreamWriter(w)
	if err != nil {
		return nil, err
	}
	return &TraceStream{sw: sw}, nil
}

// Record appends one event to the stream; it is the Options.TraceSink
// callback. Events arriving after an error or after Close are dropped.
// Safe for concurrent use (the adapter serializes), though the detector
// already delivers sink events one at a time.
func (s *TraceStream) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	s.err = s.sw.Write(e)
}

// Count returns the number of events recorded so far.
func (s *TraceStream) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sw.Count()
}

// Err returns the first error the stream encountered, if any.
func (s *TraceStream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush pushes buffered events to the underlying writer without ending
// the stream, bounding data loss on a crash.
func (s *TraceStream) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return s.err
	}
	s.err = s.sw.Flush()
	return s.err
}

// Close writes the end sentinel and flushes, then reports the recording's
// first error, if any (a recording that errored is left without its
// sentinel, so readers detect it as truncated). Close is idempotent; the
// underlying writer is not closed.
func (s *TraceStream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err != nil {
		return s.err
	}
	s.err = s.sw.Close()
	return s.err
}
