package pacer

import (
	"sync/atomic"
	"time"
)

// BudgetOptions enable adaptive sampling in the spirit of QVM (Arnold,
// Vechev, and Yahav), which the paper cites as the kindred "stay within a
// user-specified overhead budget" approach (Section 6.3): instead of a
// fixed sampling rate, the detector measures the fraction of wall-clock
// time spent inside the analysis and steers the rate so the overhead
// tracks the budget. PACER's proportionality makes this well-defined — the
// achieved detection probability is simply whatever rate the controller
// settles on, which Detector.CurrentRate reports.
type BudgetOptions struct {
	// TargetOverhead is the desired analysis overhead: seconds spent
	// inside the analysis per second of application wall-clock time
	// (0.05 = 5%). For a single-threaded application this is the classic
	// slowdown fraction; when many goroutines feed one detector their
	// analysis time is summed, so the budget then bounds total analysis
	// CPU per wall second. Zero disables adaptation.
	TargetOverhead float64
	// MaxRate caps the sampling rate the controller may choose (defaults
	// to 1.0). Options.SamplingRate is the starting rate.
	MaxRate float64
	// MinRate floors the rate so detection never stops entirely (defaults
	// to TargetOverhead/100).
	MinRate float64
}

// budgetState tracks the controller's measurements. inside is accumulated
// atomically (slow-path accesses run concurrently under shard locks); the
// remaining fields are guarded by the Detector's epoch lock.
type budgetState struct {
	opts      BudgetOptions
	rate      float64
	started   time.Time
	inside    atomic.Int64  // nanoseconds spent in analysis, across goroutines
	lastTotal time.Duration // total elapsed at the last adjustment
	lastIn    time.Duration
}

func newBudgetState(o BudgetOptions, start float64) *budgetState {
	if o.MaxRate <= 0 || o.MaxRate > 1 {
		o.MaxRate = 1
	}
	if o.MinRate <= 0 {
		o.MinRate = o.TargetOverhead / 100
	}
	rate := start
	if rate <= 0 || rate > o.MaxRate {
		rate = o.MaxRate
	}
	return &budgetState{opts: o, rate: rate, started: time.Now()}
}

// adjust recomputes the rate from the overhead observed since the last
// period boundary: a simple multiplicative-increase/decrease controller
// that halves aggressively when over budget and recovers gently.
func (b *budgetState) adjust() {
	total := time.Since(b.started)
	inside := time.Duration(b.inside.Load())
	dTotal := total - b.lastTotal
	dIn := inside - b.lastIn
	b.lastTotal, b.lastIn = total, inside
	app := dTotal - dIn
	if app <= 0 || dTotal <= 0 {
		return
	}
	overhead := float64(dIn) / float64(app)
	switch {
	case overhead > b.opts.TargetOverhead*1.2:
		b.rate *= 0.5
	case overhead < b.opts.TargetOverhead*0.8:
		b.rate *= 1.3
	}
	b.rate = min(max(b.rate, b.opts.MinRate), b.opts.MaxRate)
}

// CurrentRate returns the sampling rate currently in effect — the
// configured rate, or the budget controller's choice when a budget is set.
// Under a budget this is also the current per-race detection probability.
func (p *Detector) CurrentRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.budget != nil {
		return p.budget.rate
	}
	return p.opts.SamplingRate
}

// ObservedOverhead returns the cumulative fraction of wall-clock time the
// detector has spent inside the analysis, when a budget is configured.
func (p *Detector) ObservedOverhead() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.budget == nil {
		return 0
	}
	total := time.Since(p.budget.started)
	inside := time.Duration(p.budget.inside.Load())
	app := total - inside
	if app <= 0 {
		return 0
	}
	return float64(inside) / float64(app)
}
