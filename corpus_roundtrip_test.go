package pacer_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pacer"
	"pacer/internal/event"
)

// TestStreamSinkCorpusRoundTrip pins the streaming codec on the whole
// checked-in corpus: every trace decodes, re-encodes byte-identically
// (the encoding is canonical — a recording and a re-encoding of its
// decode cannot drift apart), and the re-decoded trace replays to the
// same dynamic race multiset.
func TestStreamSinkCorpusRoundTrip(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus missing (regenerate with `go run ./cmd/racereplay corpus`): %v", err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".trace" {
			continue
		}
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			tr, err := event.ReadAnyTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}

			var re bytes.Buffer
			ts, err := pacer.StreamSink(&re)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range tr {
				ts.Record(e)
			}
			if err := ts.Close(); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(raw, re.Bytes()) {
				t.Fatalf("re-encoding is not byte-stable: %d bytes on disk, %d re-encoded", len(raw), re.Len())
			}

			tr2, err := event.ReadAnyTrace(bytes.NewReader(re.Bytes()))
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			races1 := replayMultiset(tr)
			races2 := replayMultiset(tr2)
			if len(races1) != len(races2) {
				t.Fatalf("race multisets differ after round trip: %v vs %v", races1, races2)
			}
			for k, n := range races1 {
				if races2[k] != n {
					t.Fatalf("race %+v occurs %d times before round trip, %d after", k, n, races2[k])
				}
			}
		})
	}
}

// replayMultiset replays tr through a serialized FASTTRACK mount at rate
// 1.0 and returns the dynamic race multiset keyed by distinct identity.
func replayMultiset(tr event.Trace) map[racePair]int {
	races := map[racePair]int{}
	d := pacer.New(pacer.Options{
		Algorithm:    "fasttrack",
		SamplingRate: 1.0,
		Serialized:   true,
		Seed:         5,
		OnRace:       func(r pacer.Race) { races[pairOf(r)]++ },
	})
	for _, e := range tr {
		d.Apply(e)
	}
	return races
}

// TestEpochFastPathAllocFree pins the lock-free same-epoch dismissal
// (detector.EpochFast, served by the FASTTRACK mount) at zero allocations
// per operation, mirroring TestFastPathAllocFree for the non-sampling
// dismissal: an always-on detector's dominant case must not churn the
// garbage collector.
func TestEpochFastPathAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arena bool
	}{
		{"heap", false},
		{"arena", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := pacer.New(pacer.Options{Algorithm: "fasttrack", Arena: tc.arena})
			tid := d.NewThread()
			v := d.NewVarID()
			// Install metadata and the epoch mirrors: the write pins the
			// write epoch, the read pins a single-entry read epoch. Every
			// repeat after this is a same-epoch dismissal.
			d.Write(tid, v, 1)
			d.Read(tid, v, 1)

			if got := testing.AllocsPerRun(200, func() {
				d.Read(tid, v, 1)
			}); got != 0 {
				t.Errorf("same-epoch Read allocates %v per op, want 0", got)
			}
			if got := testing.AllocsPerRun(200, func() {
				d.Write(tid, v, 1)
			}); got != 0 {
				t.Errorf("same-epoch Write allocates %v per op, want 0", got)
			}
		})
	}
}
