package pacer_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pacer"
	"pacer/internal/event"
)

// TestStreamSinkCorpusRoundTrip pins the streaming codec on the whole
// checked-in corpus: every trace decodes, re-encodes byte-identically
// (the encoding is canonical — a recording and a re-encoding of its
// decode cannot drift apart), and the re-decoded trace replays to the
// same dynamic race multiset.
func TestStreamSinkCorpusRoundTrip(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus missing (regenerate with `go run ./cmd/racereplay corpus`): %v", err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".trace" {
			continue
		}
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			tr, err := event.ReadAnyTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}

			var re bytes.Buffer
			ts, err := pacer.StreamSink(&re)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range tr {
				ts.Record(e)
			}
			if err := ts.Close(); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(raw, re.Bytes()) {
				t.Fatalf("re-encoding is not byte-stable: %d bytes on disk, %d re-encoded", len(raw), re.Len())
			}

			tr2, err := event.ReadAnyTrace(bytes.NewReader(re.Bytes()))
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			races1 := replayMultiset(tr)
			races2 := replayMultiset(tr2)
			if len(races1) != len(races2) {
				t.Fatalf("race multisets differ after round trip: %v vs %v", races1, races2)
			}
			for k, n := range races1 {
				if races2[k] != n {
					t.Fatalf("race %+v occurs %d times before round trip, %d after", k, n, races2[k])
				}
			}
		})
	}
}

// replayMultiset replays tr through a serialized FASTTRACK mount at rate
// 1.0 and returns the dynamic race multiset keyed by distinct identity.
func replayMultiset(tr event.Trace) map[racePair]int {
	races := map[racePair]int{}
	d := pacer.New(pacer.Options{
		Algorithm:    "fasttrack",
		SamplingRate: 1.0,
		Serialized:   true,
		Seed:         5,
		OnRace:       func(r pacer.Race) { races[pairOf(r)]++ },
	})
	for _, e := range tr {
		d.Apply(e)
	}
	return races
}

// TestEpochFastPathAllocFree pins the lock-free same-epoch dismissal
// (detector.EpochFast, served by the FASTTRACK mount) at zero allocations
// per operation, mirroring TestFastPathAllocFree for the non-sampling
// dismissal: an always-on detector's dominant case must not churn the
// garbage collector.
func TestEpochFastPathAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arena bool
	}{
		{"heap", false},
		{"arena", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := pacer.New(pacer.Options{Algorithm: "fasttrack", Arena: tc.arena})
			tid := d.NewThread()
			v := d.NewVarID()
			// Install metadata and the epoch mirrors: the write pins the
			// write epoch, the read pins a single-entry read epoch. Every
			// repeat after this is a same-epoch dismissal.
			d.Write(tid, v, 1)
			d.Read(tid, v, 1)

			if got := testing.AllocsPerRun(200, func() {
				d.Read(tid, v, 1)
			}); got != 0 {
				t.Errorf("same-epoch Read allocates %v per op, want 0", got)
			}
			if got := testing.AllocsPerRun(200, func() {
				d.Write(tid, v, 1)
			}); got != 0 {
				t.Errorf("same-epoch Write allocates %v per op, want 0", got)
			}
		})
	}
}

// TestOwnedFastPathAllocFree pins the owned-access CAS dismissal
// (detector.OwnedAccess) at zero allocations per operation in the case it
// exists to serve: the shared-read update. Two concurrent readers spill
// the read map to multi-entry, which publishes a zero read mirror — the
// same-epoch dismissal can no longer fire, so without the ownership claim
// every further read would serialize on the variable's shard lock.
func TestOwnedFastPathAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arena bool
	}{
		{"heap", false},
		{"arena", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := pacer.New(pacer.Options{Algorithm: "fasttrack", Arena: tc.arena})
			t0 := d.NewThread()
			v := d.NewVarID()
			t1 := d.Fork(t0)
			// Unordered reads from both threads: the read map inflates to
			// two entries and stays there (no write, no sync between them).
			d.Read(t0, v, 1)
			d.Read(t1, v, 2)

			before := d.Stats().FastPathReads
			if got := testing.AllocsPerRun(200, func() {
				d.Read(t0, v, 3)
			}); got != 0 {
				t.Errorf("owned shared-read update allocates %v per op, want 0", got)
			}
			if after := d.Stats().FastPathReads; after <= before {
				t.Fatalf("owned fast path never fired: FastPathReads %d -> %d", before, after)
			}
		})
	}
}

// TestBurstSkipAllocFree pins the lock-free burst-sampler dismissal
// (detector.BurstSampler, served by the LITERACE mount) at zero
// allocations per operation: once a (method, thread) burst drains, the
// cold-method skip is the sampler's dominant state and must not churn the
// garbage collector. The accesses go through Apply so they carry a Method,
// which the public Read/Write surface does not.
func TestBurstSkipAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arena bool
	}{
		{"heap", false},
		{"arena", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := pacer.New(pacer.Options{Algorithm: "literace", Arena: tc.arena})
			tid := d.NewThread()
			v := d.NewVarID()
			read := pacer.Event{Kind: event.Read, Thread: tid, Target: uint32(v), Site: 1, Method: 7}
			// Drain the first burst (BurstLength defaults to 1000): after
			// it the rate backs off and skip gaps dominate.
			for i := 0; i < 1000; i++ {
				d.Apply(read)
			}

			before := d.Stats().FastPathReads
			if got := testing.AllocsPerRun(2000, func() {
				d.Apply(read)
			}); got != 0 {
				t.Errorf("post-burst access allocates %v per op, want 0", got)
			}
			// The measurement window must actually have exercised the
			// skip path, and dominantly so (rate is at most 1/Backoff by
			// now); otherwise the zero-alloc claim proves nothing.
			if skips := d.Stats().FastPathReads - before; skips < 500 {
				t.Fatalf("burst skip barely fired during measurement: %d lock-free dismissals", skips)
			}
		})
	}
}
