package pacer_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pacer"
	"pacer/internal/event"
	"pacer/internal/oracle"
	"pacer/internal/tracegen"
	"pacer/internal/vclock"
)

// The oracle conformance layer replays generated and checked-in traces
// through the full backend × {serialized, sharded} × {heap, arena} matrix
// at sampling rate 1.0 and judges every run against the exact
// happens-before ground truth (internal/oracle):
//
//   - Precision, for every precise backend in every configuration: each
//     reported distinct race must be in the oracle's racing-pair multiset.
//   - Exactness, for the precise-and-complete backends: the set of
//     variables reported racy must equal the oracle's racy-variable set
//     (the "first race per variable at rate 1.0" guarantee).
//
// Failures are reproducible: each one prints a `racereplay verify`
// invocation, and when $PACER_FAILURE_DIR is set the failing trace is
// written there in the streaming format (CI uploads the directory as an
// artifact).

// matrixCell is one front-end configuration of the conformance matrix.
type matrixCell struct {
	serialized bool
	arena      bool
	clock      string // "" = flat vector clocks, "tree" = vclock.Tree
}

func (c matrixCell) String() string {
	s, a := "sharded", "heap"
	if c.serialized {
		s = "serialized"
	}
	if c.arena {
		a = "arena"
	}
	out := s + "/" + a
	if c.clock != "" {
		out += "/" + c.clock
	}
	return out
}

// fullMatrix is the {serialized, sharded} × {heap, arena} slice for one
// clock representation.
func fullMatrix(clock string) []matrixCell {
	return []matrixCell{
		{serialized: true, clock: clock}, {serialized: true, arena: true, clock: clock},
		{serialized: false, clock: clock}, {serialized: false, arena: true, clock: clock},
	}
}

// matrixCellsFor returns the cells that are behaviorally distinct for a
// backend. Every sharded arena-capable backend (pacer, fasttrack,
// literace, djit+, o1samples) exercises all four front-end
// configurations; the clock-switchable backends (pacer, fasttrack,
// o1samples) additionally repeat them with tree clocks mounted, since the
// representation swap must be invisible to every verdict. The remaining
// backends are driven serialized with heap metadata whatever the options
// say, so one cell covers them.
func matrixCellsFor(algo string) []matrixCell {
	switch algo {
	case "pacer", "fasttrack", "o1samples":
		return append(fullMatrix(""), fullMatrix("tree")...)
	case "literace", "djit", "djit+":
		return fullMatrix("")
	default:
		return []matrixCell{{serialized: true}}
	}
}

// replayOracle replays tr through the public front-end at rate 1.0 with
// algo mounted and returns the reported races.
func replayOracle(algo string, tr event.Trace, cell matrixCell, shards int) []pacer.Race {
	var races []pacer.Race
	d := pacer.New(pacer.Options{
		Algorithm:    algo,
		SamplingRate: 1.0,
		Seed:         5,
		Serialized:   cell.serialized,
		Arena:        cell.arena,
		Clock:        cell.clock,
		Shards:       shards,
		OnRace:       func(r pacer.Race) { races = append(races, r) },
	})
	for _, e := range tr {
		d.Apply(e)
	}
	return races
}

// literaceBurstsStayOpen reports whether every (method, thread) sampler
// key of tr sees fewer accesses than LITERACE's initial 100% burst, i.e.
// whether LITERACE analyzes every access of the trace and exactness may
// be demanded of it. (BurstLength is 1000 in literace.DefaultOptions.)
func literaceBurstsStayOpen(tr event.Trace) bool {
	const burstLength = 1000
	counts := map[[2]uint32]int{}
	for _, e := range tr {
		if e.Kind == event.Read || e.Kind == event.Write {
			k := [2]uint32{e.Method, uint32(e.Thread)}
			counts[k]++
			if counts[k] >= burstLength {
				return false
			}
		}
	}
	return true
}

// exactAtRateOne reports whether algo must be exact (report on every
// oracle-racy variable) for tr at sampling rate 1.0. o1samples is never
// held to exactness: its single read slot per variable cannot attribute a
// write racing with several concurrent reads to all of them, so only its
// precision is judged.
func exactAtRateOne(algo string, tr event.Trace) bool {
	switch algo {
	case "literace":
		return literaceBurstsStayOpen(tr)
	case "o1samples":
		return false
	}
	return true
}

// saveFailureTrace writes tr to $PACER_FAILURE_DIR (when set) in the
// streaming format so the CI failure artifact reproduces the run, and
// logs the reproduction command.
func saveFailureTrace(t *testing.T, name string, tr event.Trace) {
	t.Helper()
	dir := os.Getenv("PACER_FAILURE_DIR")
	if dir == "" {
		t.Logf("set PACER_FAILURE_DIR to save the failing trace for racereplay verify")
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("failure dir: %v", err)
		return
	}
	path := filepath.Join(dir, name+".trace")
	f, err := os.Create(path)
	if err != nil {
		t.Logf("failure artifact: %v", err)
		return
	}
	defer f.Close()
	sw, err := event.NewStreamWriter(f)
	if err != nil {
		t.Logf("failure artifact: %v", err)
		return
	}
	for _, e := range tr {
		if err := sw.Write(e); err != nil {
			t.Logf("failure artifact: %v", err)
			return
		}
	}
	if err := sw.Close(); err != nil {
		t.Logf("failure artifact: %v", err)
		return
	}
	t.Logf("failing trace saved: reproduce with `go run ./cmd/racereplay verify %s`", path)
}

// checkAgainstOracle replays tr under every cell of algo's matrix slice
// and judges each run against the ground truth.
func checkAgainstOracle(t *testing.T, algo string, tr event.Trace, rep *oracle.Report, label, repro string) {
	t.Helper()
	exact := exactAtRateOne(algo, tr)
	for _, cell := range matrixCellsFor(algo) {
		races := replayOracle(algo, tr, cell, 0)
		issues := rep.Check(races, exact)
		if len(issues) == 0 {
			continue
		}
		for _, issue := range issues {
			t.Errorf("%s [%s %s]: %s", label, algo, cell, issue)
		}
		saveFailureTrace(t, fmt.Sprintf("%s-%s", label, algo), tr)
		t.Fatalf("%s [%s %s]: %d oracle violation(s); reproduce: %s",
			label, algo, cell, len(issues), repro)
	}
}

// TestConformanceOracleGenerated sweeps ≥300 seeded generator traces
// through the full backend matrix. The seeds are chunked into parallel
// subtests; each chunk analyzes its traces once and replays them under
// every backend and cell.
func TestConformanceOracleGenerated(t *testing.T) {
	const seeds = 300
	const chunks = 10
	algos := append(conformanceAlgorithms(), "o1samples")
	for c := 0; c < chunks; c++ {
		c := c
		t.Run(fmt.Sprintf("chunk%02d", c), func(t *testing.T) {
			t.Parallel()
			for seed := int64(c); seed < seeds; seed += chunks {
				tr := tracegen.Generate(tracegen.CorpusConfig(seed))
				rep := oracle.Analyze(tr)
				label := fmt.Sprintf("gen-seed-%d", seed)
				repro := fmt.Sprintf("go run ./cmd/racereplay verify -seed %d", seed)
				for _, algo := range algos {
					checkAgainstOracle(t, algo, tr, rep, label, repro)
				}
			}
		})
	}
}

// TestConformanceOracleCorpus replays every checked-in trace under
// testdata/corpus through the full backend matrix against the ground
// truth. The corpus is the recorded scenario slice (ported Go
// race-detector suite shapes) plus a slice of generated traces.
func TestConformanceOracleCorpus(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatalf("corpus missing (regenerate with `go run ./cmd/racereplay corpus`): %v", err)
	}
	algos := append(conformanceAlgorithms(), "o1samples")
	n := 0
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".trace" {
			continue
		}
		n++
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f, err := os.Open(filepath.Join("testdata", "corpus", name))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, err := event.ReadAnyTrace(f)
			if err != nil {
				t.Fatal(err)
			}
			rep := oracle.Analyze(tr)
			repro := fmt.Sprintf("go run ./cmd/racereplay verify testdata/corpus/%s", name)
			for _, algo := range algos {
				checkAgainstOracle(t, algo, tr, rep, name, repro)
			}
		})
	}
	if n < 45 {
		t.Fatalf("corpus holds only %d traces; expected the scenario slice (40+) plus generated seeds", n)
	}
}

// TestConformanceCorpusRegeneration pins the corpus files to their
// deterministic regeneration: `go run ./cmd/racereplay corpus` must be a
// no-op on a clean tree. A mismatch means a recording-path or generator
// change silently altered the corpus — regenerate and review the diff.
func TestConformanceCorpusRegeneration(t *testing.T) {
	files, err := tracegen.CorpusFiles()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "corpus")
	onDisk := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus missing (regenerate with `go run ./cmd/racereplay corpus`): %v", err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".trace" {
			continue
		}
		onDisk[ent.Name()] = true
		want, ok := files[ent.Name()]
		if !ok {
			t.Errorf("stray corpus file %s (not produced by tracegen.CorpusFiles)", ent.Name())
			continue
		}
		got, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: on-disk bytes differ from deterministic regeneration (run `go run ./cmd/racereplay corpus`)", ent.Name())
		}
	}
	for name := range files {
		if !onDisk[name] {
			t.Errorf("corpus file %s missing on disk (run `go run ./cmd/racereplay corpus`)", name)
		}
	}
}

// permuteThreads applies a bijection over thread identifiers to every
// event of tr (Thread fields plus Fork/Join targets).
func permuteThreads(tr event.Trace, pi func(vclock.Thread) vclock.Thread) event.Trace {
	out := make(event.Trace, len(tr))
	copy(out, tr)
	for i := range out {
		out[i].Thread = pi(out[i].Thread)
		if out[i].Kind == event.Fork || out[i].Kind == event.Join {
			out[i].Target = uint32(pi(vclock.Thread(out[i].Target)))
		}
	}
	return out
}

// varSet projects race reports onto their variable set.
func varSet(races []pacer.Race) map[pacer.VarID]bool {
	m := map[pacer.VarID]bool{}
	for _, r := range races {
		m[r.Var] = true
	}
	return m
}

// pairSet projects race reports onto their distinct identities.
func pairSet(races []pacer.Race) map[racePair]bool {
	m := map[racePair]bool{}
	for _, r := range races {
		m[pairOf(r)] = true
	}
	return m
}

// TestConformanceThreadPermutation is the metamorphic check that thread
// identifiers carry no detection-relevant information: renaming the
// threads of a trace by a bijection must leave the oracle's racing-pair
// multiset identical (sites do not encode thread identity) and must leave
// each exact backend's reported variable set identical.
func TestConformanceThreadPermutation(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		tr := tracegen.Generate(tracegen.CorpusConfig(seed))
		nthreads := tr.Threads()
		reverse := func(u vclock.Thread) vclock.Thread { return vclock.Thread(nthreads-1) - u }
		ptr := permuteThreads(tr, reverse)

		rep, prep := oracle.Analyze(tr), oracle.Analyze(ptr)
		if len(rep.Pairs) != len(prep.Pairs) {
			t.Fatalf("seed %d: oracle pair sets differ under thread permutation: %d vs %d",
				seed, len(rep.Pairs), len(prep.Pairs))
		}
		for p, n := range rep.Pairs {
			if prep.Pairs[p] != n {
				t.Fatalf("seed %d: oracle multiplicity of %v changed under permutation: %d vs %d",
					seed, p, n, prep.Pairs[p])
			}
		}

		for _, algo := range []string{"pacer", "fasttrack", "generic"} {
			got := varSet(replayOracle(algo, tr, matrixCell{serialized: true}, 0))
			pgot := varSet(replayOracle(algo, ptr, matrixCell{serialized: true}, 0))
			if len(got) != len(pgot) {
				t.Fatalf("seed %d %s: reported variable set changed under thread permutation: %v vs %v",
					seed, algo, got, pgot)
			}
			for v := range got {
				if !pgot[v] {
					t.Fatalf("seed %d %s: x%d reported only without permutation", seed, algo, v)
				}
			}
		}
	}
}

// TestConformanceShardInvariance is the metamorphic check that the shard
// count is a pure performance knob: replaying one trace with 1, 8, and
// 256 variable-metadata shards must report the identical distinct race
// set (the generated traces include shard-collision clusters, so a
// striping bug that conflates or drops per-shard metadata would show).
func TestConformanceShardInvariance(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		tr := tracegen.Generate(tracegen.CorpusConfig(seed))
		rep := oracle.Analyze(tr)
		for _, algo := range []string{"pacer", "fasttrack", "literace", "djit"} {
			var base map[racePair]bool
			for _, shards := range []int{1, 8, 256} {
				got := pairSet(replayOracle(algo, tr, matrixCell{}, shards))
				for p := range got {
					if rep.Pairs[oracle.MakePair(p.v, p.a, p.b)] == 0 {
						t.Fatalf("seed %d %s shards=%d: phantom race %+v", seed, algo, shards, p)
					}
				}
				if base == nil {
					base = got
					continue
				}
				if len(got) != len(base) {
					t.Fatalf("seed %d %s: distinct races vary with shard count: %d (shards=1) vs %d (shards=%d)",
						seed, algo, len(base), len(got), shards)
				}
				for p := range base {
					if !got[p] {
						t.Fatalf("seed %d %s shards=%d: race %+v lost relative to shards=1", seed, algo, shards, p)
					}
				}
			}
		}
	}
}

// TestFastTrackVarCapFrontEnd pins the Options.EpochFastVarCap plumbing:
// with a tiny cap, variables past the cap still detect races (through the
// locked path) and the lock-free same-epoch fast path engages only for
// variables below the cap.
func TestFastTrackVarCapFrontEnd(t *testing.T) {
	var races []pacer.Race
	d := pacer.New(pacer.Options{
		Algorithm:       "fasttrack",
		EpochFastVarCap: 4,
		OnRace:          func(r pacer.Race) { races = append(races, r) },
	})
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	low, high := pacer.VarID(1), pacer.VarID(1000)

	// Same-epoch repeats on the low variable engage the lock-free fast
	// path; the high variable must never (it is past the cap).
	d.Write(t0, low, 1)
	d.Write(t0, low, 1)
	d.Write(t0, high, 2)
	d.Write(t0, high, 2)
	fast := d.Stats().FastPathWrites
	if fast == 0 {
		t.Fatal("below-cap variable never took the same-epoch fast path")
	}

	// Races on both sides of the cap must be detected identically.
	d.Write(t1, low, 3)
	d.Write(t1, high, 4)
	vars := varSet(races)
	if !vars[low] || !vars[high] {
		t.Fatalf("cap changed detection: races reported on %v, want both x%d and x%d", vars, low, high)
	}
}
