// Ported from the NoRaceChanSync shape: the send/receive pair carries the
// writer's history to the reader.
package main

import "fmt"

var x int

func main() {
	c := make(chan struct{})
	go func() {
		x = 1
		c <- struct{}{}
	}()
	<-c
	fmt.Println(x)
}
