// Ported from the RaceRWMutexMultipleReaders shape: one goroutine takes
// the read lock but writes. Read locks do not exclude each other, so the
// write races with the other reader's read.
package main

import (
	"fmt"
	"sync"
	"time"
)

var (
	x  int
	rw sync.RWMutex
)

func main() {
	done := make(chan struct{})
	go func() {
		rw.RLock()
		x = 1 // a write under the read lock
		rw.RUnlock()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	rw.RLock()
	fmt.Println(x) // concurrent read lock: races with the write
	rw.RUnlock()
	<-done
}
