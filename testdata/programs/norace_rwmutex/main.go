// A writer under the write lock and readers under read locks: the
// RWMutex publication protocol orders every pair that matters.
package main

import (
	"fmt"
	"sync"
	"time"
)

var (
	x  int
	rw sync.RWMutex
)

func main() {
	done := make(chan struct{}, 3)
	go func() {
		rw.Lock()
		x = 1
		rw.Unlock()
		done <- struct{}{}
	}()
	for i := 0; i < 2; i++ {
		go func() {
			time.Sleep(10 * time.Millisecond)
			rw.RLock()
			_ = x
			rw.RUnlock()
			done <- struct{}{}
		}()
	}
	<-done
	<-done
	<-done
	rw.RLock()
	fmt.Println(x)
	rw.RUnlock()
}
