// Ported from the RaceWaitGroupAsMutex shape: Done publishes the worker's
// history, so a write the worker performs after its Done is invisible to
// the waiter and races with the waiter's read.
package main

import (
	"fmt"
	"sync"
	"time"
)

var x int

func main() {
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		x = 1
		wg.Done()
		x = 2 // after Done: not covered by the publication
		close(done)
	}()
	wg.Wait()
	time.Sleep(20 * time.Millisecond)
	fmt.Println(x) // races with the post-Done write
	<-done
}
