// The writer unlocks before its write, so the write escapes the critical
// section and races with the reader's properly guarded read.
package main

import (
	"fmt"
	"sync"
	"time"
)

var (
	x  int
	mu sync.Mutex
)

func main() {
	done := make(chan struct{})
	go func() {
		mu.Lock()
		tmp := x
		mu.Unlock()
		x = tmp + 1 // outside the critical section
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	fmt.Println(x) // races with the escaped write
	mu.Unlock()
	<-done
}
