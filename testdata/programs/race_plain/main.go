// Ported from the RaceIntRWGlobalFuncs shape: one goroutine writes a
// package-level int, the other reads it with no synchronization. The
// sleep orders the accesses in time without creating a happens-before
// edge, so the race is exposed deterministically. Exactly one racy pair
// executes per run, which makes this program the sampling-rate
// measurement target: at rate r it should be reported in ~r of runs.
package main

import (
	"fmt"
	"time"
)

var x int

func main() {
	done := make(chan struct{})
	go func() {
		x = 1
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	fmt.Println(x) // races with the write above
	<-done
}
