package counter

import (
	"sync"
	"testing"
)

func TestConcurrentIncr(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				Incr()
			}
		}()
	}
	wg.Wait()
	_ = Value() // the count may be torn; the race report is the point
}
