// Package counter is the racy `pacergo test` front-door target: the same
// counter as its norace_ sibling with the mutex deleted, so the test's
// goroutines race on the increment.
package counter

var n int

// Incr bumps the counter with no synchronization.
func Incr() {
	n++
}

// Value reads the counter.
func Value() int {
	return n
}
