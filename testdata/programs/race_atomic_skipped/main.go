// The writer publishes through an atomic store, but the reader never
// performs the matching load: the payload read races.
package main

import (
	"fmt"
	"sync/atomic"
	"time"
)

var (
	x     int
	ready int32
)

func main() {
	done := make(chan struct{})
	go func() {
		x = 1
		atomic.StoreInt32(&ready, 1)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	fmt.Println(x) // skipped atomic.LoadInt32(&ready): races
	<-done
}
