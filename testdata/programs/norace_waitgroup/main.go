// The well-formed version of the WaitGroup shape: every worker write
// happens before its Done, and the parent reads only after Wait.
package main

import (
	"fmt"
	"sync"
)

var x int

func main() {
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			x++
			wg.Done()
		}()
		wg.Wait() // join each worker before forking the next
	}
	fmt.Println(x)
}
