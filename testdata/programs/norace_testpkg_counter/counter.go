// Package counter is the `pacergo test` front-door target: a
// mutex-guarded counter whose test hammers it from several goroutines.
package counter

import "sync"

var (
	mu sync.Mutex
	n  int
)

// Incr bumps the counter under the lock.
func Incr() {
	mu.Lock()
	n++
	mu.Unlock()
}

// Value reads the counter under the lock.
func Value() int {
	mu.Lock()
	defer mu.Unlock()
	return n
}
