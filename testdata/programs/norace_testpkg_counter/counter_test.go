package counter

import (
	"sync"
	"testing"
)

func TestConcurrentIncr(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				Incr()
			}
		}()
	}
	wg.Wait()
	if got := Value(); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}
