// Ported from the RaceMutex2 shape: both sides lock — but each its own
// mutex, so the critical sections do not exclude each other.
package main

import (
	"fmt"
	"sync"
	"time"
)

var (
	x        int
	mu1, mu2 sync.Mutex
)

func main() {
	done := make(chan struct{})
	go func() {
		mu1.Lock()
		x = 1
		mu1.Unlock()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	mu2.Lock()
	fmt.Println(x) // races: a different lock protects nothing
	mu2.Unlock()
	<-done
}
