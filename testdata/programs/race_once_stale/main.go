// The reader skips once.Do: nothing orders its read after the
// initialization the other goroutine performs inside the Once, so the
// read races with setup's write no matter how the run interleaves.
package main

import (
	"fmt"
	"sync"
)

var (
	x    int
	once sync.Once
)

func setup() { x = 42 }

func main() {
	done := make(chan struct{})
	go func() {
		once.Do(setup)
		done <- struct{}{}
	}()
	fmt.Println(x) // no once.Do first
	<-done
}
