// Concurrent readers of a value written before the forks: the fork edge
// orders the parent's write before every child's read, and reads never
// race with reads.
package main

import (
	"fmt"
	"time"
)

var x int

func main() {
	x = 42
	done := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_ = x
			done <- struct{}{}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	<-done
	<-done
	<-done
	fmt.Println(x)
}
