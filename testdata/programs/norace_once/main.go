// Once-guarded initialization: whichever goroutine wins once.Do runs
// setup's write, and every Do return — winner and latecomer alike —
// happens after it, so both reads are ordered.
package main

import (
	"fmt"
	"sync"
)

var (
	x    int
	once sync.Once
)

func setup() { x = 42 }

func main() {
	done := make(chan struct{})
	go func() {
		once.Do(setup)
		fmt.Println(x)
		done <- struct{}{}
	}()
	once.Do(setup)
	fmt.Println(x)
	<-done
}
