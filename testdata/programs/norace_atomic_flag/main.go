// Spin on an atomic flag: the load that observes the store carries the
// writer's history, so the payload read is ordered.
package main

import (
	"fmt"
	"sync/atomic"
	"time"
)

var (
	x     int
	ready int32
)

func main() {
	go func() {
		x = 1
		atomic.StoreInt32(&ready, 1)
	}()
	for {
		r := atomic.LoadInt32(&ready)
		if r == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println(x)
}
