// Ported from the NoRaceIntRWGlobalFuncs shape: the same write/read pair
// as race_plain, but both sides hold the same mutex.
package main

import (
	"fmt"
	"sync"
	"time"
)

var (
	x  int
	mu sync.Mutex
)

func main() {
	done := make(chan struct{})
	go func() {
		mu.Lock()
		x = 1
		mu.Unlock()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	fmt.Println(x)
	mu.Unlock()
	<-done
}
