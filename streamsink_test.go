package pacer_test

import (
	"bytes"
	"testing"

	"pacer"
	"pacer/internal/event"
)

// TestStreamSinkRoundTrip records a live detector run through the
// streaming sink and an in-memory slice sink simultaneously, then checks
// that decoding the stream reproduces the slice exactly and that
// replaying the decoded trace through Apply reproduces the run's races.
func TestStreamSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ts, err := pacer.StreamSink(&buf)
	if err != nil {
		t.Fatalf("StreamSink: %v", err)
	}
	var slice []pacer.Event
	var live []pacer.Race
	d := pacer.New(pacer.Options{
		SamplingRate: 1,
		Seed:         11,
		OnRace:       func(r pacer.Race) { live = append(live, r) },
		TraceSink: func(e pacer.Event) {
			slice = append(slice, e)
			ts.Record(e)
		},
	})
	main := d.NewThread()
	a, b := d.Fork(main), d.Fork(main)
	mu := d.NewLockID()
	v1, v2 := d.NewVarID(), d.NewVarID()

	d.Acquire(a, mu)
	d.Write(a, v1, 10)
	d.Release(a, mu)
	d.Acquire(b, mu)
	d.Read(b, v1, 11) // lock-ordered: no race
	d.Release(b, mu)
	d.Write(a, v2, 20)
	d.Read(b, v2, 21) // racy
	d.Join(main, a)
	d.Join(main, b)

	if len(live) == 0 {
		t.Fatal("the instrumented run reported no races; the test needs one to round-trip")
	}
	if err := ts.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if ts.Count() != uint64(len(slice)) {
		t.Errorf("stream recorded %d events, slice sink saw %d", ts.Count(), len(slice))
	}
	// Record after Close is dropped, not an error.
	ts.Record(pacer.Event{})
	if ts.Count() != uint64(len(slice)) {
		t.Errorf("Record after Close changed the count")
	}

	tr, err := event.ReadAnyTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading stream back: %v", err)
	}
	if len(tr) != len(slice) {
		t.Fatalf("decoded %d events, want %d", len(tr), len(slice))
	}
	for i := range tr {
		if tr[i] != slice[i] {
			t.Fatalf("event %d decoded as %+v, want %+v", i, tr[i], slice[i])
		}
	}

	// The recorded stream carries SampleBegin/SampleEnd, so a replay is
	// under external sampling control and must reproduce the races.
	var replayed []pacer.Race
	rd := pacer.New(pacer.Options{
		Serialized: true,
		OnRace:     func(r pacer.Race) { replayed = append(replayed, r) },
	})
	for _, e := range tr {
		rd.Apply(e)
	}
	if len(replayed) != len(live) {
		t.Fatalf("replay reported %d races, live run reported %d", len(replayed), len(live))
	}
	for i := range live {
		if replayed[i] != live[i] {
			t.Errorf("race %d replayed as %v, want %v", i, replayed[i], live[i])
		}
	}

	// A truncated stream (sentinel missing) is detected on read.
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := event.ReadAnyTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream read back without error")
	}
}
