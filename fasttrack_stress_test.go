// Stress tests for the sharded FASTTRACK mount: always-on detection driven
// through the concurrent front-end's striped reader-writer path and the
// lock-free same-epoch dismissal. Run under `go test -race` (CI does) so
// the Go race detector audits the sharded ingestion itself; the assertions
// check operation conservation across all three ingestion paths and the
// always-sampling discipline (Sampling stays true; dismissals are only the
// provably-no-op same-epoch accesses).
package pacer_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"pacer"
)

// TestFastTrackShardedStressStatsConservation hammers a FASTTRACK-mounted
// detector from many goroutines and checks that Stats sees exactly the
// issued operation counts — nothing is lost or double-counted across the
// lock-free same-epoch dismissals, the sharded slow path, and the
// serialized sync path — and that the same-epoch fast path actually fires
// (repeated private accesses within an epoch are its bread and butter).
func TestFastTrackShardedStressStatsConservation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arena bool
	}{{"heap", false}, {"arena", true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const goroutines = 8
			const opsPer = 4000
			var raceCount atomic.Uint64
			d := pacer.New(pacer.Options{
				Algorithm: "fasttrack",
				PeriodOps: 256,
				Seed:      3,
				Shards:    8, // small shard count: more same-shard contention
				Arena:     tc.arena,
				OnRace:    func(pacer.Race) { raceCount.Add(1) },
			})
			if d.ShardCount() != 8 {
				t.Fatalf("ShardCount = %d, want 8: FASTTRACK should mount sharded", d.ShardCount())
			}
			if !d.Sampling() {
				t.Fatal("always-on backend must report Sampling() == true")
			}
			main := d.NewThread()
			shared := d.NewVarID()
			m := d.NewMutex()
			var issuedReads, issuedWrites atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				tid := d.Fork(main)
				wg.Add(1)
				go func(tid pacer.ThreadID, g int) {
					defer wg.Done()
					private := d.NewVarID()
					for i := 0; i < opsPer; i++ {
						switch i % 8 {
						case 0: // unsynchronized shared write: race-prone
							d.Write(tid, shared, pacer.SiteID(g))
							issuedWrites.Add(1)
						case 1:
							m.Lock(tid)
							d.Read(tid, shared, pacer.SiteID(g+100))
							m.Unlock(tid)
							issuedReads.Add(1)
						case 2, 3: // private writes: distinct shards in parallel
							d.Write(tid, private, pacer.SiteID(g+200))
							issuedWrites.Add(1)
						default:
							d.Read(tid, private, pacer.SiteID(g+300))
							issuedReads.Add(1)
						}
					}
				}(tid, g)
			}
			wg.Wait()
			s := d.Stats()
			if s.Reads != issuedReads.Load() {
				t.Errorf("Stats.Reads = %d, issued %d", s.Reads, issuedReads.Load())
			}
			if s.Writes != issuedWrites.Load() {
				t.Errorf("Stats.Writes = %d, issued %d", s.Writes, issuedWrites.Load())
			}
			if s.FastPathReads == 0 || s.FastPathWrites == 0 {
				t.Errorf("same-epoch fast path never fired: %d reads, %d writes dismissed",
					s.FastPathReads, s.FastPathWrites)
			}
			if s.SyncOps == 0 {
				t.Error("sync ops not counted")
			}
			if s.Races == 0 || raceCount.Load() == 0 {
				t.Error("unsynchronized shared writes from 8 goroutines produced no race report")
			}
			if s.Races != raceCount.Load() {
				t.Errorf("Stats.Races = %d, OnRace saw %d", s.Races, raceCount.Load())
			}
			if s.VarsTracked == 0 || s.MetadataWords == 0 {
				t.Error("always-on detection tracked no metadata")
			}
			if s.ArenaEnabled != tc.arena {
				t.Errorf("ArenaEnabled = %v, want %v", s.ArenaEnabled, tc.arena)
			}
			if tc.arena && s.ArenaSlabsLive == 0 {
				t.Error("arena mount holds no live slabs after tracking metadata")
			}
		})
	}
}

// TestFastTrackShardedMatchesSerializedRaces runs the identical
// single-threaded operation sequence through a serialized and a sharded
// FASTTRACK mount: with one thread the two paths must report the same
// races in the same order.
func TestFastTrackShardedMatchesSerializedRaces(t *testing.T) {
	run := func(serialized bool) []pacer.Race {
		var races []pacer.Race
		d := pacer.New(pacer.Options{
			Algorithm:  "fasttrack",
			Serialized: serialized,
			Seed:       7,
			OnRace:     func(r pacer.Race) { races = append(races, r) },
		})
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		v := d.NewVarID()
		w := d.NewVarID()
		site := pacer.SiteID(1)
		for i := 0; i < 500; i++ {
			d.Read(t0, w, site)
			site++
			if i%71 == 0 {
				d.Write(t0, v, site)
				site++
				d.Write(t1, v, site)
				site++
				d.Read(t0, v, site)
				site++
			}
		}
		return races
	}
	ser, conc := run(true), run(false)
	if len(ser) != len(conc) {
		t.Fatalf("race counts differ: serialized %d, sharded %d", len(ser), len(conc))
	}
	for i := range ser {
		if ser[i] != conc[i] {
			t.Fatalf("race %d differs: serialized %+v, sharded %+v", i, ser[i], conc[i])
		}
	}
	if len(ser) == 0 {
		t.Fatal("workload produced no races")
	}
}

// TestFastTrackTrimEpochRepublication pins the SmartTrack-style
// republication trim against its failure mode. The trim stops publishing
// the thread's epoch per access (a seed-once check) on the argument that
// every operation advancing the thread's own component republishes; if a
// release ever skipped that, the same-epoch probe would dismiss a
// new-epoch write against the old epoch's mirror, leave the stale write
// epoch in place, and silently lose the cross-thread race below. Exactly
// one write/write race must surface in every cell.
func TestFastTrackTrimEpochRepublication(t *testing.T) {
	for _, clock := range []string{"", "tree"} {
		for _, serialized := range []bool{true, false} {
			var races []pacer.Race
			d := pacer.New(pacer.Options{
				Algorithm:  "fasttrack",
				Serialized: serialized,
				Clock:      clock,
				Seed:       11,
				OnRace:     func(r pacer.Race) { races = append(races, r) },
			})
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			x := d.NewVarID()
			m := d.NewMutex()
			d.Write(t0, x, 1) // epoch e0: seeds the publication
			d.Write(t0, x, 1) // same-epoch: the mirror must serve this one
			m.Lock(t0)
			m.Unlock(t0)      // release advances t0's epoch to e1 and must republish
			d.Write(t0, x, 2) // e1 write: a stale mirror would dismiss this
			m.Lock(t1)        // t1 learns e0 (the clock before the release's inc)
			m.Unlock(t1)
			d.Write(t1, x, 3) // races with the e1 write, not the e0 one
			if len(races) != 1 {
				t.Errorf("clock=%q serialized=%v: got %d races, want exactly 1 (stale published epoch hides the e1 write)",
					clock, serialized, len(races))
			}
		}
	}
}

// TestFastTrackTrimStressStatsConservation is the trim's stress companion:
// an acquire-heavy mix (most lock operations teach the thread nothing new)
// where per-access republication used to be the thing keeping the
// published epochs current. With the trim, epochs are republished only at
// the operations that advance them — so the same-epoch fast path must keep
// firing between sync operations, every issued operation must still be
// accounted for exactly once across the three ingestion paths, and the
// race-free construction must stay silent. Runs under both clock
// representations; `go test -race` audits the sharded ingestion itself.
func TestFastTrackTrimStressStatsConservation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		clock string
		arena bool
	}{
		{"flat/heap", "", false},
		{"tree/heap", "tree", false},
		{"tree/arena", "tree", true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const goroutines = 8
			const opsPer = 3000
			d := pacer.New(pacer.Options{
				Algorithm: "fasttrack",
				Seed:      13,
				Shards:    8,
				Clock:     tc.clock,
				Arena:     tc.arena,
				OnRace:    func(r pacer.Race) { t.Errorf("false race on race-free workload: %+v", r) },
			})
			main := d.NewThread()
			shared := d.NewVarID()
			handoff := d.NewMutex()
			var issuedReads, issuedWrites, issuedSyncs atomic.Uint64
			d.Write(main, shared, 1) // ordered before every fork
			issuedWrites.Add(1)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				tid := d.Fork(main)
				wg.Add(1)
				go func(tid pacer.ThreadID, g int) {
					defer wg.Done()
					mine := d.NewMutex() // uncontended: acquires learn nothing
					private := d.NewVarID()
					for i := 0; i < opsPer; i++ {
						switch i % 8 {
						case 0: // redundant acquire/release churn
							mine.Lock(tid)
							mine.Unlock(tid)
							issuedSyncs.Add(2)
						case 1: // cross-thread ordered read of the pre-fork write
							handoff.Lock(tid)
							d.Read(tid, shared, pacer.SiteID(g+100))
							handoff.Unlock(tid)
							issuedReads.Add(1)
							issuedSyncs.Add(2)
						case 2, 3: // private writes: same-epoch after the first
							d.Write(tid, private, pacer.SiteID(g+200))
							issuedWrites.Add(1)
						default: // private reads: same-epoch fodder
							d.Read(tid, private, pacer.SiteID(g+300))
							issuedReads.Add(1)
						}
					}
				}(tid, g)
			}
			wg.Wait()
			s := d.Stats()
			if s.Reads != issuedReads.Load() {
				t.Errorf("Stats.Reads = %d, issued %d", s.Reads, issuedReads.Load())
			}
			if s.Writes != issuedWrites.Load() {
				t.Errorf("Stats.Writes = %d, issued %d", s.Writes, issuedWrites.Load())
			}
			// Fork/join bookkeeping adds sync ops beyond the mutex traffic;
			// conservation here is "at least what we issued, never lost".
			if s.SyncOps < issuedSyncs.Load() {
				t.Errorf("Stats.SyncOps = %d, issued %d mutex ops", s.SyncOps, issuedSyncs.Load())
			}
			if s.FastPathReads == 0 || s.FastPathWrites == 0 {
				t.Errorf("same-epoch fast path stopped firing under the trim: %d reads, %d writes dismissed",
					s.FastPathReads, s.FastPathWrites)
			}
			if s.Races != 0 {
				t.Errorf("Stats.Races = %d on a race-free workload", s.Races)
			}
		})
	}
}

// TestOwnedStressStatsConservation hammers the owned-access CAS path: the
// workload is almost entirely reads of variables shared by every
// goroutine, whose multi-entry read maps publish no epoch mirror — the
// same-epoch dismissal cannot serve them, so every lock-free dismissal
// here is an ownership claim (or, early on, a single-entry mirror hit).
// The assertions pin conservation — CAS dismissals and slow-path analyses
// must sum to exactly the issued counts — and that the lock-free side
// carries a meaningful share of the load. The workload is race-free by
// construction (the only writes happen before the forks), so any report
// would be a false positive from a torn owned update.
func TestOwnedStressStatsConservation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arena bool
	}{{"heap", false}, {"arena", true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const goroutines = 8
			const opsPer = 4000
			d := pacer.New(pacer.Options{
				Algorithm: "fasttrack",
				Seed:      5,
				Shards:    8,
				Arena:     tc.arena,
				OnRace:    func(r pacer.Race) { t.Errorf("false race on read-only workload: %+v", r) },
			})
			main := d.NewThread()
			shared := make([]pacer.VarID, 4)
			for i := range shared {
				shared[i] = d.NewVarID()
				d.Write(main, shared[i], 1) // ordered before every fork
			}
			m := d.NewMutex()
			var issuedReads atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				tid := d.Fork(main)
				wg.Add(1)
				go func(tid pacer.ThreadID, g int) {
					defer wg.Done()
					for i := 0; i < opsPer; i++ {
						if i%512 == 511 { // epoch churn: republication keeps claims valid
							m.Lock(tid)
							m.Unlock(tid)
							continue
						}
						d.Read(tid, shared[i%len(shared)], pacer.SiteID(g+1))
						issuedReads.Add(1)
					}
				}(tid, g)
			}
			wg.Wait()
			s := d.Stats()
			if s.Reads != issuedReads.Load() {
				t.Errorf("Stats.Reads = %d, issued %d", s.Reads, issuedReads.Load())
			}
			if s.FastPathReads < issuedReads.Load()/4 {
				t.Errorf("owned fast path carried %d of %d shared reads — CAS claims are not firing",
					s.FastPathReads, issuedReads.Load())
			}
		})
	}
}
