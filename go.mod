module pacer

go 1.22
