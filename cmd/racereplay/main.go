// Command racereplay records a benchmark execution as a trace file and
// replays traces under any of the repository's race detectors. Recording
// once and replaying under several detectors or sampling rates gives an
// apples-to-apples comparison on an identical interleaving.
//
// Replay mounts the chosen backend behind the public pacer front-end —
// the exact ingestion code a live application exercises — so replayed
// numbers are comparable with production behavior. Sampling periods are
// rolled by the front-end from -seed, -rate, and -period: replaying the
// same trace with the same three flags samples identical operation
// windows, making runs reproducible (vary -seed to sample different
// windows of the same recording).
//
// Usage:
//
//	racereplay record -bench eclipse -seed 3 -o eclipse.trace
//	racereplay replay -detector pacer -rate 0.03 -seed 7 eclipse.trace
//	racereplay stat eclipse.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pacer"
	"pacer/internal/backends"
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/sim"
	"pacer/internal/vclock"
	"pacer/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  racereplay record -bench <name> [-seed N] [-stream] -o <file>
  racereplay replay -detector <name> [-rate R] [-seed N] [-period P] [-serialized] <file>
  racereplay stat <file>

replay detectors: %s
replay is reproducible: the same -detector, -rate, -period, and -seed
sample identical operation windows of the trace on every run.

replay and stat read both trace formats: the block format (the record
default) and the streaming format that -stream and pacer.StreamSink
produce (incremental, bounded-memory recording).
`, strings.Join(backends.Names(), ", "))
	os.Exit(2)
}

// recorder adapts the detector interface to capture the event stream the
// simulator produces.
type recorder struct {
	tr event.Trace
}

func (r *recorder) add(e event.Event) { r.tr = append(r.tr, e) }

func (r *recorder) Read(t vclock.Thread, x event.Var, s event.Site, m uint32) {
	r.add(event.Event{Kind: event.Read, Thread: t, Target: uint32(x), Site: s, Method: m})
}
func (r *recorder) Write(t vclock.Thread, x event.Var, s event.Site, m uint32) {
	r.add(event.Event{Kind: event.Write, Thread: t, Target: uint32(x), Site: s, Method: m})
}
func (r *recorder) Acquire(t vclock.Thread, m event.Lock) {
	r.add(event.Event{Kind: event.Acquire, Thread: t, Target: uint32(m)})
}
func (r *recorder) Release(t vclock.Thread, m event.Lock) {
	r.add(event.Event{Kind: event.Release, Thread: t, Target: uint32(m)})
}
func (r *recorder) Fork(t, u vclock.Thread) {
	r.add(event.Event{Kind: event.Fork, Thread: t, Target: uint32(u)})
}
func (r *recorder) Join(t, u vclock.Thread) {
	r.add(event.Event{Kind: event.Join, Thread: t, Target: uint32(u)})
}
func (r *recorder) VolRead(t vclock.Thread, v event.Volatile) {
	r.add(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(v)})
}
func (r *recorder) VolWrite(t vclock.Thread, v event.Volatile) {
	r.add(event.Event{Kind: event.VolWrite, Thread: t, Target: uint32(v)})
}
func (r *recorder) Name() string { return "recorder" }

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "eclipse", "benchmark to record")
	seed := fs.Int64("seed", 1, "trial seed")
	out := fs.String("o", "", "output trace file")
	stream := fs.Bool("stream", false, "write the streaming trace format (what pacer.StreamSink emits)")
	fs.Parse(args)
	if *out == "" {
		fatal("record: -o is required")
	}
	b := workload.ByName(*bench)
	if b == nil {
		fatal(fmt.Sprintf("record: unknown benchmark %q", *bench))
	}
	rec := &recorder{}
	if _, err := sim.Run(b.Program(*seed), sim.Config{
		Seed: *seed, Detector: rec, InstrumentAccesses: true,
	}); err != nil {
		fatal(err.Error())
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()
	format := "block"
	if *stream {
		format = "streaming"
		sw, err := event.NewStreamWriter(f)
		if err != nil {
			fatal(err.Error())
		}
		for _, e := range rec.tr {
			if err := sw.Write(e); err != nil {
				fatal(err.Error())
			}
		}
		if err := sw.Close(); err != nil {
			fatal(err.Error())
		}
	} else if err := event.WriteTrace(f, rec.tr); err != nil {
		fatal(err.Error())
	}
	fmt.Printf("recorded %d events from %s (seed %d) to %s (%s format)\n",
		len(rec.tr), *bench, *seed, *out, format)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	det := fs.String("detector", "pacer", "detector backend: "+strings.Join(backends.Names(), ", "))
	rate := fs.Float64("rate", 0.03, "sampling rate (backends with sampling periods)")
	seed := fs.Int64("seed", 1, "period-selection seed; fixed seed+rate+period => identical sampled windows every run")
	period := fs.Int("period", 4096, "operations per sampling-decision period")
	serialized := fs.Bool("serialized", false, "disable the concurrent front-end (single-mutex ingestion baseline)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if !backends.Known(*det) {
		fatal(fmt.Sprintf("replay: unknown detector %q (known: %s)", *det, strings.Join(backends.Names(), ", ")))
	}
	tr := readTrace(fs.Arg(0))

	// Replay through the unified public front-end: the same ingestion path
	// (fast path, shards, period roller) the live API serves, with the
	// requested backend mounted behind it. The trace is fed from one
	// goroutine, so the collector needs no extra locking.
	col := detector.NewCollector()
	d := pacer.New(pacer.Options{
		Algorithm:    *det,
		SamplingRate: *rate,
		PeriodOps:    *period,
		Seed:         *seed,
		Serialized:   *serialized,
		OnRace:       col.Report,
	})
	for _, e := range tr {
		d.Apply(e)
	}

	fmt.Printf("%s over %d events: %d dynamic races, %d distinct\n",
		d.Algorithm(), len(tr), col.DynamicCount(), col.DistinctCount())
	for _, k := range col.DistinctKeys() {
		fmt.Printf("  sites (%d, %d): %d dynamic occurrence(s)\n", k.SiteA, k.SiteB, col.PerDistinct[k])
	}
}

func stat(args []string) {
	if len(args) != 1 {
		usage()
	}
	tr := readTrace(args[0])
	counts := tr.Counts()
	fmt.Printf("%d events, %d threads\n", len(tr), tr.Threads())
	for k := event.Read; k <= event.SampleEnd; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-8s %d\n", k, counts[k])
		}
	}
}

func readTrace(path string) event.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()
	tr, err := event.ReadAnyTrace(f)
	if err != nil {
		fatal(err.Error())
	}
	return tr
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "racereplay:", msg)
	os.Exit(1)
}
