// Command racereplay records a benchmark execution as a trace file and
// replays traces under any of the repository's race detectors. Recording
// once and replaying under several detectors or sampling rates gives an
// apples-to-apples comparison on an identical interleaving.
//
// Replay mounts the chosen backend behind the public pacer front-end —
// the exact ingestion code a live application exercises — so replayed
// numbers are comparable with production behavior. Sampling periods are
// rolled by the front-end from -seed, -rate, and -period: replaying the
// same trace with the same three flags samples identical operation
// windows, making runs reproducible (vary -seed to sample different
// windows of the same recording).
//
// Usage:
//
//	racereplay record -bench eclipse -seed 3 -o eclipse.trace
//	racereplay replay -detector pacer -rate 0.03 -seed 7 eclipse.trace
//	racereplay verify -seed 17            # or: racereplay verify file.trace
//	racereplay corpus -o testdata/corpus
//	racereplay stat eclipse.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pacer"
	"pacer/internal/backends"
	"pacer/internal/detector"
	"pacer/internal/event"
	"pacer/internal/oracle"
	"pacer/internal/sim"
	"pacer/internal/tracegen"
	"pacer/internal/vclock"
	"pacer/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "corpus":
		corpus(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	case "backends":
		printBackends()
	default:
		usage()
	}
}

// printBackends prints the live mount/arena/capability matrix straight
// from the backend registry — the authoritative version of the
// docs/backends.md table (a test pins the two together).
func printBackends() {
	fmt.Printf("%-12s %-11s %-6s %-10s %s\n", "backend", "mount", "arena", "sampling", "lock-free dismissals")
	for _, c := range backends.All() {
		var extras []string
		if c.Sharded && c.Sampler {
			extras = append(extras, "no-metadata")
		}
		if c.EpochFast {
			extras = append(extras, "same-epoch")
		}
		if c.OwnedAccess {
			extras = append(extras, "owned-access")
		}
		if c.BurstSampler {
			extras = append(extras, "burst-skip")
		}
		ex := strings.Join(extras, ", ")
		if ex == "" {
			ex = "—"
		}
		arena := "no"
		if c.Arena {
			arena = "yes"
		}
		sampling := "always-on"
		if c.Sampler {
			sampling = "periods"
		}
		fmt.Printf("%-12s %-11s %-6s %-10s %s\n", c.Name, c.Mount(), arena, sampling, ex)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  racereplay record -bench <name> [-seed N] [-stream] -o <file>
  racereplay replay -detector <name> [-rate R] [-seed N] [-period P] [-serialized] <file>
  racereplay verify [-detector <name>|all] (<file> | -seed N)
  racereplay corpus [-o <dir>]
  racereplay stat <file>
  racereplay backends

replay detectors: %s
replay is reproducible: the same -detector, -rate, -period, and -seed
sample identical operation windows of the trace on every run.

verify replays a trace (a file, or the conformance generator's trace for
-seed N) through the chosen backends at rate 1.0 and judges every run
against the exact happens-before oracle; it exits nonzero on any
precision or completeness violation. corpus regenerates the checked-in
conformance corpus deterministically.

replay, verify, and stat read both trace formats: the block format (the
record default) and the streaming format that -stream and
pacer.StreamSink produce (incremental, bounded-memory recording).
`, strings.Join(backends.Names(), ", "))
	os.Exit(2)
}

// recorder adapts the detector interface to capture the event stream the
// simulator produces.
type recorder struct {
	tr event.Trace
}

func (r *recorder) add(e event.Event) { r.tr = append(r.tr, e) }

func (r *recorder) Read(t vclock.Thread, x event.Var, s event.Site, m uint32) {
	r.add(event.Event{Kind: event.Read, Thread: t, Target: uint32(x), Site: s, Method: m})
}
func (r *recorder) Write(t vclock.Thread, x event.Var, s event.Site, m uint32) {
	r.add(event.Event{Kind: event.Write, Thread: t, Target: uint32(x), Site: s, Method: m})
}
func (r *recorder) Acquire(t vclock.Thread, m event.Lock) {
	r.add(event.Event{Kind: event.Acquire, Thread: t, Target: uint32(m)})
}
func (r *recorder) Release(t vclock.Thread, m event.Lock) {
	r.add(event.Event{Kind: event.Release, Thread: t, Target: uint32(m)})
}
func (r *recorder) Fork(t, u vclock.Thread) {
	r.add(event.Event{Kind: event.Fork, Thread: t, Target: uint32(u)})
}
func (r *recorder) Join(t, u vclock.Thread) {
	r.add(event.Event{Kind: event.Join, Thread: t, Target: uint32(u)})
}
func (r *recorder) VolRead(t vclock.Thread, v event.Volatile) {
	r.add(event.Event{Kind: event.VolRead, Thread: t, Target: uint32(v)})
}
func (r *recorder) VolWrite(t vclock.Thread, v event.Volatile) {
	r.add(event.Event{Kind: event.VolWrite, Thread: t, Target: uint32(v)})
}
func (r *recorder) Name() string { return "recorder" }

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "eclipse", "benchmark to record")
	seed := fs.Int64("seed", 1, "trial seed")
	out := fs.String("o", "", "output trace file")
	stream := fs.Bool("stream", false, "write the streaming trace format (what pacer.StreamSink emits)")
	fs.Parse(args)
	if *out == "" {
		fatal("record: -o is required")
	}
	b := workload.ByName(*bench)
	if b == nil {
		fatal(fmt.Sprintf("record: unknown benchmark %q", *bench))
	}
	rec := &recorder{}
	if _, err := sim.Run(b.Program(*seed), sim.Config{
		Seed: *seed, Detector: rec, InstrumentAccesses: true,
	}); err != nil {
		fatal(err.Error())
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()
	format := "block"
	if *stream {
		format = "streaming"
		sw, err := event.NewStreamWriter(f)
		if err != nil {
			fatal(err.Error())
		}
		for _, e := range rec.tr {
			if err := sw.Write(e); err != nil {
				fatal(err.Error())
			}
		}
		if err := sw.Close(); err != nil {
			fatal(err.Error())
		}
	} else if err := event.WriteTrace(f, rec.tr); err != nil {
		fatal(err.Error())
	}
	fmt.Printf("recorded %d events from %s (seed %d) to %s (%s format)\n",
		len(rec.tr), *bench, *seed, *out, format)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	det := fs.String("detector", "pacer", "detector backend: "+strings.Join(backends.Names(), ", "))
	rate := fs.Float64("rate", 0.03, "sampling rate (backends with sampling periods)")
	seed := fs.Int64("seed", 1, "period-selection seed; fixed seed+rate+period => identical sampled windows every run")
	period := fs.Int("period", 4096, "operations per sampling-decision period")
	serialized := fs.Bool("serialized", false, "disable the concurrent front-end (single-mutex ingestion baseline)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if !backends.Known(*det) {
		fatal(fmt.Sprintf("replay: unknown detector %q (known: %s)", *det, strings.Join(backends.Names(), ", ")))
	}
	tr := readTrace(fs.Arg(0))

	// Replay through the unified public front-end: the same ingestion path
	// (fast path, shards, period roller) the live API serves, with the
	// requested backend mounted behind it. The trace is fed from one
	// goroutine, so the collector needs no extra locking.
	col := detector.NewCollector()
	d := pacer.New(pacer.Options{
		Algorithm:    *det,
		SamplingRate: *rate,
		PeriodOps:    *period,
		Seed:         *seed,
		Serialized:   *serialized,
		OnRace:       col.Report,
	})
	for _, e := range tr {
		d.Apply(e)
	}

	fmt.Printf("%s over %d events: %d dynamic races, %d distinct\n",
		d.Algorithm(), len(tr), col.DynamicCount(), col.DistinctCount())
	for _, k := range col.DistinctKeys() {
		fmt.Printf("  sites (%d, %d): %d dynamic occurrence(s)\n", k.SiteA, k.SiteB, col.PerDistinct[k])
	}
}

// verify replays a trace through race-detection backends at sampling rate
// 1.0 and checks every run against the exact happens-before ground truth
// (internal/oracle): precision for every precise backend, and exactness
// (report on exactly the oracle's racy variables) for the complete ones.
// The trace is either a file or — with -seed — the deterministic
// conformance-generator trace for that seed, so any failure printed by
// the conformance suite reproduces here from its seed alone.
func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	det := fs.String("detector", "all", "backend to verify, or \"all\" for every precise backend")
	seed := fs.Int64("seed", -1, "verify the conformance generator's trace for this seed instead of a file")
	fs.Parse(args)

	var tr event.Trace
	var source string
	switch {
	case *seed >= 0 && fs.NArg() == 0:
		tr = tracegen.Generate(tracegen.CorpusConfig(*seed))
		source = fmt.Sprintf("generated trace (seed %d)", *seed)
	case *seed < 0 && fs.NArg() == 1:
		tr = readTrace(fs.Arg(0))
		source = fs.Arg(0)
	default:
		fatal("verify: pass exactly one trace file, or -seed N")
	}

	var algos []string
	if *det == "all" {
		for _, a := range backends.Names() {
			if a != "lockset" { // imprecise by design; the oracle check does not apply
				algos = append(algos, a)
			}
		}
	} else {
		if !backends.Known(*det) {
			fatal(fmt.Sprintf("verify: unknown detector %q (known: %s)", *det, strings.Join(backends.Names(), ", ")))
		}
		algos = []string{*det}
	}

	rep := oracle.Analyze(tr)
	fmt.Printf("%s: %d events, %d accesses, ground truth %d distinct race(s) on %d variable(s)\n",
		source, len(tr), rep.Accesses, len(rep.Pairs), len(rep.RacyVars))

	// A recorded trace that ends a sampling period mid-stream legitimately
	// hides races from the detector, so exactness is only demanded of
	// traces analyzed end to end.
	fullyAnalyzed := true
	for _, e := range tr {
		if e.Kind == event.SampleEnd {
			fullyAnalyzed = false
			break
		}
	}

	violations := 0
	for _, algo := range algos {
		exact := fullyAnalyzed && (algo != "literace" || literaceBurstsOpen(tr))
		for _, cell := range verifyCells(algo) {
			var races []detector.Race
			d := pacer.New(pacer.Options{
				Algorithm:    algo,
				SamplingRate: 1.0,
				Seed:         5,
				Serialized:   cell.serialized,
				Arena:        cell.arena,
				OnRace:       func(r detector.Race) { races = append(races, r) },
			})
			for _, e := range tr {
				d.Apply(e)
			}
			issues := rep.Check(races, exact)
			mode := "sharded"
			if cell.serialized {
				mode = "serialized"
			}
			alloc := "heap"
			if cell.arena {
				alloc = "arena"
			}
			if len(issues) == 0 {
				fmt.Printf("  ok   %-10s %-10s %-5s (%d report(s))\n", algo, mode, alloc, len(races))
				continue
			}
			violations += len(issues)
			for _, issue := range issues {
				fmt.Printf("  FAIL %-10s %-10s %-5s %s\n", algo, mode, alloc, issue)
			}
		}
	}
	if violations > 0 {
		fatal(fmt.Sprintf("verify: %d oracle violation(s)", violations))
	}
}

type verifyCell struct{ serialized, arena bool }

// verifyCells mirrors the conformance suite's matrix slice per backend:
// the sharded arena-capable backends exercise all four front-end
// configurations, the rest only the configurations that differ
// behaviorally for them.
func verifyCells(algo string) []verifyCell {
	switch algo {
	case "pacer", "fasttrack", "literace", "djit", "djit+":
		return []verifyCell{{true, false}, {true, true}, {false, false}, {false, true}}
	default:
		return []verifyCell{{true, false}}
	}
}

// literaceBurstsOpen reports whether every (method, thread) sampler key
// sees fewer accesses than LITERACE's initial 100% burst, i.e. whether
// LITERACE analyzes the whole trace and exactness can be demanded of it.
func literaceBurstsOpen(tr event.Trace) bool {
	const burstLength = 1000
	counts := map[[2]uint32]int{}
	for _, e := range tr {
		if e.Kind == event.Read || e.Kind == event.Write {
			k := [2]uint32{e.Method, uint32(e.Thread)}
			counts[k]++
			if counts[k] >= burstLength {
				return false
			}
		}
	}
	return true
}

// corpus (re)generates the checked-in conformance corpus. The files are
// deterministic (tracegen.CorpusFiles), and the conformance suite's
// regeneration test fails whenever the checked-in bytes drift from what
// this command writes.
func corpus(args []string) {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	out := fs.String("o", "testdata/corpus", "output directory")
	fs.Parse(args)
	files, err := tracegen.CorpusFiles()
	if err != nil {
		fatal(err.Error())
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err.Error())
	}
	// Drop stale traces so the directory always equals the generated set.
	entries, err := os.ReadDir(*out)
	if err != nil {
		fatal(err.Error())
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".trace") {
			if _, ok := files[name]; !ok {
				if err := os.Remove(filepath.Join(*out, name)); err != nil {
					fatal(err.Error())
				}
				fmt.Printf("removed stale %s\n", name)
			}
		}
	}
	for _, name := range tracegen.CorpusNames(files) {
		if err := os.WriteFile(filepath.Join(*out, name), files[name], 0o644); err != nil {
			fatal(err.Error())
		}
	}
	fmt.Printf("wrote %d corpus traces to %s\n", len(files), *out)
}

func stat(args []string) {
	if len(args) != 1 {
		usage()
	}
	tr := readTrace(args[0])
	counts := tr.Counts()
	fmt.Printf("%d events, %d threads\n", len(tr), tr.Threads())
	for k := event.Read; k <= event.SampleEnd; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-8s %d\n", k, counts[k])
		}
	}
}

func readTrace(path string) event.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()
	tr, err := event.ReadAnyTrace(f)
	if err != nil {
		fatal(err.Error())
	}
	return tr
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "racereplay:", msg)
	os.Exit(1)
}
