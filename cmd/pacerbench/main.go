// Command pacerbench regenerates the PACER paper's evaluation (Section 5):
// every table and figure, on the simulator substrate.
//
// Usage:
//
//	pacerbench [-experiment all|table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|frontend|arena|fasttrack|clocks|contention|ingest]
//	           [-bench eclipse|hsqldb|xalan|pseudojbb] [-scale 0.2] [-seed 0]
//
// The frontend, arena, and fasttrack experiments are different in kind:
// they measure the real wall-clock behavior of the concurrent public API
// on this machine. frontend compares the sharded lock-free front-end
// against the single-mutex baseline across goroutine counts (with
// allocations/op and metadata-words columns); arena compares the
// slab-allocated metadata arena (Options.Arena) against the default heap
// allocator; fasttrack compares the always-on FASTTRACK backend mounted
// sharded against the same backend driven serialized; contention runs
// FASTTRACK on shared-read and sync-heavy mixes three ways — serialized,
// sharded without the owned-access path, and the full sharded mount with
// CAS read-map updates. The ingest experiment load-tests the production
// ingest tier (internal/ingest): thousands of simulated reporters with
// fault injection and a graceful mid-run collector restart, asserting
// bounded state memory, zero triage loss, and the delta-push size win.
//
// -scale multiplies the paper's trial counts (1.0 reproduces the full
// protocol: 50 fully sampled trials per benchmark, up to 500 trials per
// sampling rate, and so on; the default 0.2 finishes in a few minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pacer/internal/harness"
	"pacer/internal/ingest/loadtest"
	"pacer/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: all, table1, table2, table3, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, ablation, frontend, arena, fasttrack, clocks, contention, ingest")
	benchName := flag.String("bench", "", "restrict to one benchmark (eclipse, hsqldb, xalan, pseudojbb)")
	scale := flag.Float64("scale", 0.2, "trial-count scale factor (1.0 = the paper's protocol)")
	seed := flag.Int64("seed", 0, "base seed for all trials")
	flag.Parse()

	opts := harness.Options{Scale: *scale, SeedBase: *seed}
	if *benchName != "" {
		b := workload.ByName(*benchName)
		if b == nil {
			fmt.Fprintf(os.Stderr, "pacerbench: unknown benchmark %q\n", *benchName)
			os.Exit(2)
		}
		opts.Benches = []*workload.Spec{b}
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := 0
	start := time.Now()

	section := func(name string, run func() error) {
		if !want(name) {
			return
		}
		ran++
		t0 := time.Now()
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "pacerbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s took %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	section("table1", func() error {
		r, err := harness.Table1(opts)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		return nil
	})
	section("table2", func() error {
		r, err := harness.Table2(opts)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		return nil
	})
	if want("fig3") || want("fig4") || want("fig5") {
		ran++
		t0 := time.Now()
		r, err := harness.Accuracy(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pacerbench: accuracy: %v\n", err)
			os.Exit(1)
		}
		if want("fig3") {
			r.RenderFig3(os.Stdout)
			fmt.Println()
			r.Chart(os.Stdout, false)
			fmt.Println()
		}
		if want("fig4") {
			r.RenderFig4(os.Stdout)
			fmt.Println()
			r.Chart(os.Stdout, true)
			fmt.Println()
		}
		if want("fig5") {
			r.RenderFig5(os.Stdout)
			fmt.Println()
		}
		fmt.Printf("[accuracy (fig3-5) took %v]\n\n", time.Since(t0).Round(time.Millisecond))
	}
	section("fig6", func() error {
		b := workload.Eclipse()
		if len(opts.Benches) == 1 {
			b = opts.Benches[0]
		}
		r, err := harness.Fig6(b, opts)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		return nil
	})
	section("fig7", func() error {
		r, err := harness.Fig7(opts)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		fmt.Println()
		r.Chart(os.Stdout)
		return nil
	})
	section("fig8", func() error {
		r, err := harness.Scaling(opts, harness.Fig8Rates, 8)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		fmt.Println()
		r.Chart(os.Stdout)
		return nil
	})
	section("fig9", func() error {
		r, err := harness.Scaling(opts, harness.Fig9Rates, 9)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		return nil
	})
	section("fig10", func() error {
		b := workload.Eclipse()
		if len(opts.Benches) == 1 {
			b = opts.Benches[0]
		}
		r, err := harness.Fig10(b, opts)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		fmt.Println()
		r.Chart(os.Stdout)
		return nil
	})
	section("lineage", func() error {
		b := workload.Eclipse()
		if len(opts.Benches) == 1 {
			b = opts.Benches[0]
		}
		r, err := harness.Lineage(b, opts)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		return nil
	})
	section("ablation", func() error {
		r, err := harness.Ablations(opts)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		return nil
	})
	section("table3", func() error {
		r, err := harness.Table3(opts)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		return nil
	})
	section("frontend", func() error {
		ops := int(200_000 * *scale)
		if ops < 20_000 {
			ops = 20_000
		}
		harness.Frontend(harness.FrontendConfig{Ops: ops}).Render(os.Stdout)
		return nil
	})
	section("arena", func() error {
		ops := int(200_000 * *scale)
		if ops < 20_000 {
			ops = 20_000
		}
		harness.Arena(harness.ArenaConfig{Ops: ops}).Render(os.Stdout)
		return nil
	})
	section("fasttrack", func() error {
		ops := int(200_000 * *scale)
		if ops < 20_000 {
			ops = 20_000
		}
		harness.FastTrackScaling(harness.FastTrackConfig{Ops: ops}).Render(os.Stdout)
		return nil
	})
	section("clocks", func() error {
		ops := int(100_000 * *scale)
		if ops < 10_000 {
			ops = 10_000
		}
		harness.Clocks(harness.ClocksConfig{Ops: ops}).Render(os.Stdout)
		return nil
	})
	section("contention", func() error {
		ops := int(200_000 * *scale)
		if ops < 20_000 {
			ops = 20_000
		}
		harness.Contention(harness.ContentionConfig{Ops: ops}).Render(os.Stdout)
		return nil
	})
	section("ingest", func() error {
		reporters := int(5000 * *scale)
		if reporters < 100 {
			reporters = 100
		}
		dir, err := os.MkdirTemp("", "pacerd-ingest-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		res, err := loadtest.Run(loadtest.Config{
			Reporters: reporters,
			Restart:   true,
			StateDir:  dir,
			Seed:      *seed,
		})
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		return loadtest.Check(res)
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pacerbench: unknown experiment %q (try: %s)\n",
			*experiment, strings.Join([]string{"all", "table1", "table2", "table3",
				"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation", "lineage", "frontend", "arena", "fasttrack", "clocks", "contention", "ingest"}, ", "))
		os.Exit(2)
	}
	fmt.Printf("pacerbench: done in %v (scale %.2f)\n", time.Since(start).Round(time.Millisecond), *scale)
}
