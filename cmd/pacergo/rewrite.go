package main

// The rewriter: given a type-checked package, thread pacer runtime hooks
// through its function bodies. The rules keep the detector's precision
// pitch intact — a hook placement that could manufacture a false positive
// is always resolved the other way (an extra or missing happens-before
// edge may hide a race, never invent one):
//
//   - read hooks run BEFORE the statement that performs the read, write
//     hooks AFTER it. A statement like `x = <-ch` synchronizes before the
//     write lands, so hooking the write first would report races the
//     program cannot have.
//   - only shared memory is instrumented: package-level variables,
//     closure-captured and address-taken locals, pointer dereferences,
//     slice/array elements, and fields reached through pointers. A local
//     that never escapes cannot race.
//   - sync operations are hooked on the side of the real operation that
//     makes the edge sound: Lock after it returns, Unlock before it runs,
//     channel sends publish before the send, receives acquire after.
//   - expressions that the statement may not evaluate (the right side of
//     && and ||) get no hooks: a hook must never evaluate — and possibly
//     panic on — an expression the program would have skipped.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

const (
	rtName     = "__pacer_rt"
	unsafeName = "__pacer_unsafe"
	rtPath     = "pacer/internal/rt"
)

// instrumenter rewrites one type-checked package.
type instrumenter struct {
	fset  *token.FileSet
	info  *types.Info
	pkg   *types.Package
	sizes types.Sizes

	// shared marks objects whose memory is reachable from more than one
	// goroutine: address-taken or closure-captured variables (package
	// level variables are shared by definition and checked dynamically).
	shared map[types.Object]bool

	// done guards against rewriting a block twice (function literals are
	// reachable both through statement recursion and expression walks).
	done map[*ast.BlockStmt]bool

	// siteSeq numbers generated site variables. Package-level: site vars
	// from every file of a package land in the same scope, so the counter
	// must never reset between files.
	siteSeq int

	// per-file state
	fileName  string            // site prefix, e.g. "examples/planted/main.go"
	sites     map[string]string // "line:col" -> generated var name
	siteOrder []string
	needRT    bool
	tmpSeq    int
}

// --- site interning ---

// site returns the generated site variable name for pos, interning it.
func (in *instrumenter) site(pos token.Pos) *ast.Ident {
	p := in.fset.Position(pos)
	key := fmt.Sprintf("%d:%d", p.Line, p.Column)
	name, ok := in.sites[key]
	if !ok {
		in.siteSeq++
		name = fmt.Sprintf("__pacer_s%d", in.siteSeq)
		in.sites[key] = name
		in.siteOrder = append(in.siteOrder, key)
	}
	in.needRT = true
	return ast.NewIdent(name)
}

func (in *instrumenter) temp(kind string) string {
	in.tmpSeq++
	return fmt.Sprintf("__pacer_%s%d", kind, in.tmpSeq)
}

// --- AST construction helpers (all nodes position-free) ---

func rtSel(name string) ast.Expr {
	return &ast.SelectorExpr{X: ast.NewIdent(rtName), Sel: ast.NewIdent(name)}
}

func rtCall(name string, args ...ast.Expr) *ast.ExprStmt {
	return &ast.ExprStmt{X: &ast.CallExpr{Fun: rtSel(name), Args: args}}
}

func intLit(n int64) ast.Expr {
	return &ast.BasicLit{Kind: token.INT, Value: strconv.FormatInt(n, 10)}
}

// unsafeAddr builds __pacer_unsafe.Pointer(&lv).
func unsafeAddr(lv ast.Expr) ast.Expr {
	return &ast.CallExpr{
		Fun:  &ast.SelectorExpr{X: ast.NewIdent(unsafeName), Sel: ast.NewIdent("Pointer")},
		Args: []ast.Expr{&ast.UnaryExpr{Op: token.AND, X: &ast.ParenExpr{X: lv}}},
	}
}

// accessHook builds rt.R/rt.W(unsafe.Pointer(&lv), size, site).
func (in *instrumenter) accessHook(fn string, lv ast.Expr, t types.Type, pos token.Pos) ast.Stmt {
	size, ok := in.safeSize(t)
	if !ok {
		size = 1
	}
	return rtCall(fn, unsafeAddr(lv), intLit(size), in.site(pos))
}

// safeSize is Sizeof with generics guarded: a type containing type
// parameters has no size at instrumentation time.
func (in *instrumenter) safeSize(t types.Type) (n int64, ok bool) {
	if t == nil {
		return 0, false
	}
	defer func() {
		if recover() != nil {
			n, ok = 0, false
		}
	}()
	return in.sizes.Sizeof(t), true
}

// --- shared-variable analysis ---

// analyzeShared walks the package's files marking locals whose address
// escapes their goroutine: explicit &x, capture by a function literal,
// and the implicit &x of calling a pointer-receiver method on an
// addressable value.
func (in *instrumenter) analyzeShared(files []*ast.File) {
	in.shared = make(map[types.Object]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					in.markRoot(x.X)
				}
			case *ast.FuncLit:
				in.markCaptured(x)
			case *ast.SelectorExpr:
				if sel, ok := in.info.Selections[x]; ok && sel.Kind() == types.MethodVal {
					if sig, ok := sel.Obj().Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
							if _, isPtr := sel.Recv().(*types.Pointer); !isPtr {
								in.markRoot(x.X) // implicit &recv
							}
						}
					}
				}
			}
			return true
		})
	}
}

// markRoot marks the variable at the base of an lvalue chain as shared.
func (in *instrumenter) markRoot(e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := in.objOf(x).(*types.Var); ok && !v.IsField() {
				in.shared[v] = true
			}
			return
		default:
			return
		}
	}
}

// markCaptured marks every variable a function literal uses that was
// declared outside the literal.
func (in *instrumenter) markCaptured(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := in.objOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			in.shared[v] = true
		}
		return true
	})
}

func (in *instrumenter) objOf(id *ast.Ident) types.Object {
	if o := in.info.Uses[id]; o != nil {
		return o
	}
	return in.info.Defs[id]
}

// sharedVar reports whether a variable's memory can be reached by another
// goroutine: package-level, or locally marked by analyzeShared.
func (in *instrumenter) sharedVar(v *types.Var) bool {
	if v.IsField() {
		return false
	}
	if in.shared[v] {
		return true
	}
	// Package-level variables live in the package scope.
	return v.Parent() != nil && (v.Parent() == in.pkg.Scope() ||
		(v.Pkg() != nil && v.Parent() == v.Pkg().Scope()))
}

// --- hookable lvalues ---

// target resolves e to the lvalue to hook and its type, or ok=false when
// the expression is not instrumentable shared memory. Map element
// accesses hook the map variable itself (elements have no address).
func (in *instrumenter) target(e ast.Expr) (lv ast.Expr, t types.Type, ok bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return in.target(x.X)
	case *ast.Ident:
		if v, okv := in.objOf(x).(*types.Var); okv && v.Name() != "_" && in.sharedVar(v) {
			return e, v.Type(), true
		}
	case *ast.StarExpr:
		if t := in.info.TypeOf(e); t != nil {
			return e, t, true
		}
	case *ast.SelectorExpr:
		if sel, oks := in.info.Selections[x]; oks {
			if sel.Kind() != types.FieldVal {
				return nil, nil, false
			}
			if _, ptr := in.info.TypeOf(x.X).Underlying().(*types.Pointer); ptr {
				return e, in.info.TypeOf(e), true
			}
			if _, _, okb := in.target(x.X); okb && in.addressable(x.X) {
				return e, in.info.TypeOf(e), true
			}
			return nil, nil, false
		}
		// Qualified identifier: another package's variable is package
		// level, hence shared.
		if v, okv := in.info.Uses[x.Sel].(*types.Var); okv && !v.IsField() {
			return e, v.Type(), true
		}
	case *ast.IndexExpr:
		bt := in.info.TypeOf(x.X)
		if bt == nil {
			return nil, nil, false
		}
		switch u := bt.Underlying().(type) {
		case *types.Slice:
			return e, u.Elem(), true
		case *types.Pointer:
			if arr, oka := u.Elem().Underlying().(*types.Array); oka {
				return e, arr.Elem(), true
			}
		case *types.Array:
			if _, _, okb := in.target(x.X); okb && in.addressable(x.X) {
				return e, u.Elem(), true
			}
		case *types.Map:
			return in.target(x.X)
		}
	}
	return nil, nil, false
}

// addressable approximates the spec's addressability for the lvalues the
// rewriter hooks (&lv must compile).
func (in *instrumenter) addressable(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return in.addressable(x.X)
	case *ast.Ident:
		v, ok := in.objOf(x).(*types.Var)
		return ok && !v.IsField()
	case *ast.StarExpr:
		return true
	case *ast.SelectorExpr:
		if sel, ok := in.info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if _, ptr := in.info.TypeOf(x.X).Underlying().(*types.Pointer); ptr {
				return true
			}
			return in.addressable(x.X)
		}
		_, ok := in.info.Uses[x.Sel].(*types.Var)
		return ok
	case *ast.IndexExpr:
		bt := in.info.TypeOf(x.X)
		if bt == nil {
			return false
		}
		switch u := bt.Underlying().(type) {
		case *types.Slice:
			return true
		case *types.Pointer:
			_, ok := u.Elem().Underlying().(*types.Array)
			return ok
		case *types.Array:
			return in.addressable(x.X)
		}
	}
	return false
}

// --- read collection ---

// readHooks appends R hooks for every hookable read in e that the
// enclosing statement unconditionally evaluates.
func (in *instrumenter) readHooks(e ast.Expr, out *[]ast.Stmt) {
	if e == nil {
		return
	}
	if lv, t, ok := in.target(e); ok && in.addressable(lv) {
		*out = append(*out, in.accessHook("R", lv, t, e.Pos()))
		// The index of an element access is itself evaluated.
		if ix, oki := e.(*ast.IndexExpr); oki {
			in.readHooks(ix.Index, out)
		}
		return
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		in.readHooks(x.X, out)
	case *ast.BinaryExpr:
		in.readHooks(x.X, out)
		// The right side of a short-circuit operator may never run; a
		// hook there could evaluate (and panic on) a skipped expression.
		if x.Op != token.LAND && x.Op != token.LOR {
			in.readHooks(x.Y, out)
		}
	case *ast.UnaryExpr:
		// &x is not a read of x; a nested <-ch is handled only at
		// statement level (documented gap).
		if x.Op != token.AND && x.Op != token.ARROW {
			in.readHooks(x.X, out)
		}
	case *ast.CallExpr:
		for _, a := range x.Args {
			in.readHooks(a, out)
		}
		// A value-receiver method call copies — reads — its receiver; a
		// pointer-receiver call only takes the address, which is not a
		// read (hooking it could report a race the program cannot have).
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if in.valueReceiverCall(sel) {
				in.readHooks(sel.X, out)
			}
		}
	case *ast.SelectorExpr:
		in.readHooks(x.X, out)
	case *ast.IndexExpr:
		in.readHooks(x.X, out)
		in.readHooks(x.Index, out)
	case *ast.SliceExpr:
		in.readHooks(x.X, out)
		in.readHooks(x.Low, out)
		in.readHooks(x.High, out)
		in.readHooks(x.Max, out)
	case *ast.TypeAssertExpr:
		in.readHooks(x.X, out)
	case *ast.StarExpr:
		in.readHooks(x.X, out)
	case *ast.CompositeLit:
		isMap := false
		if t := in.info.TypeOf(x); t != nil {
			_, isMap = t.Underlying().(*types.Map)
		}
		for _, el := range x.Elts {
			if kv, okkv := el.(*ast.KeyValueExpr); okkv {
				if isMap {
					in.readHooks(kv.Key, out)
				}
				in.readHooks(kv.Value, out)
				continue
			}
			in.readHooks(el, out)
		}
	case *ast.FuncLit:
		// Bodies are rewritten separately (funcLits); creating the
		// closure reads nothing.
	}
}

// writeHook returns the W hook for lv, or nil when it is not hookable.
func (in *instrumenter) writeHook(e ast.Expr) ast.Stmt {
	lv, t, ok := in.target(e)
	if !ok || !in.addressable(lv) {
		return nil
	}
	return in.accessHook("W", lv, t, e.Pos())
}

// funcLits rewrites the bodies of function literals appearing anywhere
// inside n (each exactly once).
func (in *instrumenter) funcLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok {
			in.rewriteBlock(fl.Body)
			return false
		}
		return true
	})
}

// --- statement rewriting ---

func (in *instrumenter) rewriteBlock(b *ast.BlockStmt) {
	if b == nil || in.done[b] {
		return
	}
	in.done[b] = true
	var out []ast.Stmt
	for _, s := range b.List {
		out = append(out, in.rewriteStmt(s)...)
	}
	b.List = out
}

func (in *instrumenter) rewriteStmt(s ast.Stmt) []ast.Stmt {
	var pre, post []ast.Stmt
	switch st := s.(type) {
	case *ast.BlockStmt:
		in.rewriteBlock(st)

	case *ast.LabeledStmt:
		inner := in.rewriteStmt(st.Stmt)
		for i, x := range inner {
			if x == st.Stmt {
				st.Stmt = x
				inner[i] = st
				return inner
			}
		}
		if len(inner) > 0 { // core was replaced (e.g. a go statement)
			st.Stmt = inner[len(inner)-1]
			inner[len(inner)-1] = st
		}
		return inner

	case *ast.ExprStmt:
		in.funcLits(st)
		if call, ok := st.X.(*ast.CallExpr); ok {
			if p, q, handled := in.syncCall(call); handled {
				return concat(p, s, q)
			}
			in.readHooks(st.X, &pre)
			break
		}
		if un, ok := st.X.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			in.readHooks(un.X, &pre)
			pre = append(pre, rtCall("ChanRecvPre", un.X))
			post = append(post, rtCall("ChanRecv", un.X))
			break
		}
		in.readHooks(st.X, &pre)

	case *ast.SendStmt:
		in.funcLits(st)
		in.readHooks(st.Chan, &pre)
		in.readHooks(st.Value, &pre)
		pre = append(pre, rtCall("ChanSend", st.Chan))
		post = append(post, rtCall("ChanSendDone", st.Chan))

	case *ast.AssignStmt:
		in.funcLits(st)
		recv := (*ast.UnaryExpr)(nil)
		if len(st.Rhs) == 1 {
			if un, ok := st.Rhs[0].(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				recv = un
			}
		}
		if recv != nil {
			in.readHooks(recv.X, &pre)
			pre = append(pre, rtCall("ChanRecvPre", recv.X))
			post = append(post, rtCall("ChanRecv", recv.X))
		} else {
			var atomicHandled bool
			if len(st.Rhs) == 1 {
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
					if p, q, handled := in.syncCall(call); handled {
						pre, post, atomicHandled = p, q, true
					}
				}
			}
			if !atomicHandled {
				for _, r := range st.Rhs {
					in.readHooks(r, &pre)
				}
			}
		}
		if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
			// Compound assignment (+= etc.) also reads its target.
			in.readHooks(st.Lhs[0], &pre)
		}
		for _, l := range st.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if st.Tok == token.DEFINE {
				// A fresh variable is only worth hooking if it escapes.
				if id, ok := l.(*ast.Ident); ok {
					if v, okv := in.info.Defs[id].(*types.Var); !okv || !in.sharedVar(v) {
						continue
					}
				}
			} else {
				// The indices of an element write are reads.
				if ix, ok := l.(*ast.IndexExpr); ok {
					in.readHooks(ix.Index, &pre)
				}
			}
			if h := in.writeHook(l); h != nil {
				post = append(post, h)
			}
		}

	case *ast.IncDecStmt:
		in.readHooks(st.X, &pre)
		if h := in.writeHook(st.X); h != nil {
			post = append(post, h)
		}

	case *ast.DeclStmt:
		in.funcLits(st)
		if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, okv := spec.(*ast.ValueSpec)
				if !okv {
					continue
				}
				for _, val := range vs.Values {
					in.readHooks(val, &pre)
				}
				for _, name := range vs.Names {
					if v, okd := in.info.Defs[name].(*types.Var); okd && in.sharedVar(v) {
						if h := in.writeHook(name); h != nil {
							post = append(post, h)
						}
					}
				}
			}
		}

	case *ast.ReturnStmt:
		in.funcLits(st)
		for _, r := range st.Results {
			in.readHooks(r, &pre)
		}

	case *ast.IfStmt:
		if st.Init != nil {
			in.funcLits(st.Init)
			in.initReads(st.Init, &pre)
		}
		in.funcLits(st.Cond)
		in.readHooks(st.Cond, &pre)
		in.rewriteBlock(st.Body)
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			in.rewriteBlock(e)
		case *ast.IfStmt:
			inner := in.rewriteStmt(e)
			if len(inner) == 1 {
				st.Else = inner[0]
			} else {
				st.Else = &ast.BlockStmt{List: inner}
			}
		}

	case *ast.ForStmt:
		// Cond and Post run once per iteration; hooks for them would
		// need to run inside the loop header, which Go cannot express
		// without restructuring the loop (documented gap).
		in.funcLits(st.Init)
		in.funcLits(st.Cond)
		in.funcLits(st.Post)
		if st.Init != nil {
			in.initReads(st.Init, &pre)
		}
		in.rewriteBlock(st.Body)

	case *ast.RangeStmt:
		in.funcLits(st.X)
		in.readHooks(st.X, &pre)
		in.rewriteBlock(st.Body)
		var top []ast.Stmt
		if t := in.info.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				top = append(top, rtCall("ChanRange", st.X))
			}
		}
		if st.Tok == token.ASSIGN {
			for _, kv := range []ast.Expr{st.Key, st.Value} {
				if kv == nil {
					continue
				}
				if id, ok := kv.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if h := in.writeHook(kv); h != nil {
					top = append(top, h)
				}
			}
		}
		if len(top) > 0 {
			st.Body.List = append(top, st.Body.List...)
		}

	case *ast.SwitchStmt:
		if st.Init != nil {
			in.funcLits(st.Init)
			in.initReads(st.Init, &pre)
		}
		in.funcLits(st.Tag)
		in.readHooks(st.Tag, &pre)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cc.Body = in.rewriteStmts(cc.Body)
			}
		}

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			in.initReads(st.Init, &pre)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cc.Body = in.rewriteStmts(cc.Body)
			}
		}

	case *ast.SelectStmt:
		return in.rewriteSelect(st)

	case *ast.GoStmt:
		return concat(pre, in.rewriteGo(st), nil)

	case *ast.DeferStmt:
		if repl := in.rewriteDeferSync(st); repl != nil {
			return []ast.Stmt{repl}
		}
		in.funcLits(st.Call)
		for _, a := range st.Call.Args {
			in.readHooks(a, &pre)
		}
	}
	return concat(pre, s, post)
}

func (in *instrumenter) rewriteStmts(list []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range list {
		out = append(out, in.rewriteStmt(s)...)
	}
	return out
}

// initReads collects read hooks from a one-statement init clause (if/for/
// switch). Writes in init clauses are not hooked — their hook would have
// to run between the init and the condition, which cannot be expressed
// without restructuring (documented gap).
func (in *instrumenter) initReads(s ast.Stmt, out *[]ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			in.readHooks(r, out)
		}
	case *ast.ExprStmt:
		in.readHooks(st.X, out)
	}
}

func concat(pre []ast.Stmt, s ast.Stmt, post []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(pre)+1+len(post))
	out = append(out, pre...)
	out = append(out, s)
	out = append(out, post...)
	return out
}

// rewriteGo turns `go f(a, b)` into a block that forks the detector
// thread and evaluates the callee and arguments in the parent (where the
// spec evaluates them), then spawns a wrapper that binds the child's
// identity before running the call:
//
//	{
//	    __pacer_g1 := rt.GoSpawn()
//	    __pacer_t2 := a
//	    go func() { rt.GoStart(__pacer_g1); defer rt.GoExit(); f(__pacer_t2, b) }()
//	}
func (in *instrumenter) rewriteGo(st *ast.GoStmt) ast.Stmt {
	call := st.Call
	var setup []ast.Stmt

	// Argument reads happen in the parent.
	for _, a := range call.Args {
		in.readHooks(a, &setup)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if in.valueReceiverCall(sel) {
			in.readHooks(sel.X, &setup)
		}
	}

	gname := in.temp("g")
	setup = append(setup, &ast.AssignStmt{
		Lhs: []ast.Expr{ast.NewIdent(gname)},
		Tok: token.DEFINE,
		Rhs: []ast.Expr{&ast.CallExpr{Fun: rtSel("GoSpawn")}},
	})
	in.needRT = true

	hoist := func(e ast.Expr) ast.Expr {
		name := in.temp("t")
		setup = append(setup, &ast.AssignStmt{
			Lhs: []ast.Expr{ast.NewIdent(name)},
			Tok: token.DEFINE,
			Rhs: []ast.Expr{e},
		})
		return ast.NewIdent(name)
	}

	fn := call.Fun
	switch f := fn.(type) {
	case *ast.FuncLit:
		in.rewriteBlock(f.Body)
	case *ast.Ident:
		if _, isFunc := in.objOf(f).(*types.Func); !isFunc {
			if _, isBuiltin := in.objOf(f).(*types.Builtin); !isBuiltin {
				fn = hoist(fn) // func-typed variable: evaluate in parent
			}
		}
	default:
		fn = hoist(fn) // method value / computed callee
	}

	args := make([]ast.Expr, len(call.Args))
	for i, a := range call.Args {
		switch a.(type) {
		case *ast.BasicLit:
			args[i] = a
		case *ast.FuncLit:
			in.funcLits(a)
			args[i] = a
		default:
			args[i] = hoist(a)
		}
	}

	body := []ast.Stmt{
		rtCall("GoStart", ast.NewIdent(gname)),
		&ast.DeferStmt{Call: &ast.CallExpr{Fun: rtSel("GoExit")}},
		&ast.ExprStmt{X: &ast.CallExpr{Fun: fn, Args: args, Ellipsis: call.Ellipsis}},
	}
	setup = append(setup, &ast.GoStmt{Call: &ast.CallExpr{
		Fun: &ast.FuncLit{
			Type: &ast.FuncType{Params: &ast.FieldList{}},
			Body: &ast.BlockStmt{List: body},
		},
	}})
	return &ast.BlockStmt{List: setup}
}

// rewriteSelect hooks a select statement's channel operations. Send-side
// publications run before the select (publishing without sending adds a
// conservative edge that can only hide races, never invent one); the
// acquisition side of whichever case fires runs at the top of its body.
func (in *instrumenter) rewriteSelect(st *ast.SelectStmt) []ast.Stmt {
	var pre []ast.Stmt
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		var top []ast.Stmt
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			in.funcLits(comm)
			pre = append(pre, rtCall("ChanSend", comm.Chan))
			top = append(top, rtCall("ChanSendDone", comm.Chan))
		case *ast.ExprStmt:
			if un, oku := comm.X.(*ast.UnaryExpr); oku && un.Op == token.ARROW {
				pre = append(pre, rtCall("ChanRecvPre", un.X))
				top = append(top, rtCall("ChanRecv", un.X))
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if un, oku := comm.Rhs[0].(*ast.UnaryExpr); oku && un.Op == token.ARROW {
					pre = append(pre, rtCall("ChanRecvPre", un.X))
					top = append(top, rtCall("ChanRecv", un.X))
					if comm.Tok == token.ASSIGN {
						for _, l := range comm.Lhs {
							if h := in.writeHook(l); h != nil {
								top = append(top, h)
							}
						}
					}
				}
			}
		}
		cc.Body = append(top, in.rewriteStmts(cc.Body)...)
	}
	if len(pre) > 0 {
		in.needRT = true
	}
	return concat(pre, st, nil)
}

// rewriteDeferSync replaces `defer mu.Unlock()` and friends with the
// matching rt helper, which orders the hook around the real operation
// while preserving defer-time receiver evaluation. Returns nil when the
// deferred call is not a recognized sync operation.
func (in *instrumenter) rewriteDeferSync(st *ast.DeferStmt) ast.Stmt {
	sel, ok := st.Call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	kind, method := in.syncMethod(sel)
	// defer once.Do(f): rt.OnceDo performs the real Do, and defer-time
	// evaluation of &once and f matches the original statement's.
	if kind == "Once" && method == "Do" && len(st.Call.Args) == 1 {
		in.funcLits(st.Call)
		in.needRT = true
		return &ast.DeferStmt{Call: &ast.CallExpr{
			Fun:  rtSel("OnceDo"),
			Args: []ast.Expr{in.recvPtr(sel.X), st.Call.Args[0]},
		}}
	}
	if len(st.Call.Args) != 0 {
		return nil
	}
	var helper string
	switch {
	case kind == "Mutex" && method == "Unlock":
		helper = "DeferUnlock"
	case kind == "RWMutex" && method == "Unlock":
		helper = "DeferRWUnlock"
	case kind == "RWMutex" && method == "RUnlock":
		helper = "DeferRWRUnlock"
	case kind == "WaitGroup" && method == "Done":
		helper = "DeferWGDone"
	case kind == "WaitGroup" && method == "Wait":
		helper = "DeferWGWait"
	default:
		return nil
	}
	in.needRT = true
	return &ast.DeferStmt{Call: &ast.CallExpr{
		Fun:  rtSel(helper),
		Args: []ast.Expr{in.recvPtr(sel.X)},
	}}
}

// syncMethod classifies a method selector on a sync package type,
// returning the type name ("Mutex", "RWMutex", "WaitGroup", "Once",
// "Map", or an atomic type name) and the method name. Empty kind means
// not a sync type.
func (in *instrumenter) syncMethod(sel *ast.SelectorExpr) (kind, method string) {
	s, ok := in.info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", ""
	}
	rt := s.Recv()
	if p, okp := rt.(*types.Pointer); okp {
		rt = p.Elem()
	}
	named, okn := rt.(*types.Named)
	if !okn || named.Obj().Pkg() == nil {
		return "", ""
	}
	switch named.Obj().Pkg().Path() {
	case "sync":
		return named.Obj().Name(), sel.Sel.Name
	case "sync/atomic":
		return "atomic." + named.Obj().Name(), sel.Sel.Name
	}
	return "", ""
}

// recvPtr builds the *T expression for a sync hook's receiver: the
// receiver itself when it is already a pointer, &recv otherwise.
func (in *instrumenter) recvPtr(recv ast.Expr) ast.Expr {
	if t := in.info.TypeOf(recv); t != nil {
		if _, ok := t.Underlying().(*types.Pointer); ok {
			return recv
		}
	}
	return &ast.UnaryExpr{Op: token.AND, X: &ast.ParenExpr{X: recv}}
}

// unsafeRecv wraps the receiver pointer for hooks taking unsafe.Pointer.
func (in *instrumenter) unsafeRecv(recv ast.Expr) ast.Expr {
	return &ast.CallExpr{
		Fun:  &ast.SelectorExpr{X: ast.NewIdent(unsafeName), Sel: ast.NewIdent("Pointer")},
		Args: []ast.Expr{in.recvPtr(recv)},
	}
}

// syncCall classifies a call expression as a synchronization operation
// and returns the hooks to place before and after the statement carrying
// it. handled=false means an ordinary call.
func (in *instrumenter) syncCall(call *ast.CallExpr) (pre, post []ast.Stmt, handled bool) {
	// close(ch): publishes like a send, before the close.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := in.objOf(id).(*types.Builtin); isBuiltin {
			in.readHooks(call.Args[0], &pre)
			pre = append(pre, rtCall("ChanClose", call.Args[0]))
			in.needRT = true
			return pre, nil, true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}

	// Package-level sync/atomic functions: atomic.LoadT(&x) and friends.
	if pid, okp := sel.X.(*ast.Ident); okp {
		if pn, okn := in.info.Uses[pid].(*types.PkgName); okn && pn.Imported().Path() == "sync/atomic" {
			if len(call.Args) == 0 {
				return nil, nil, false
			}
			ptr := call.Args[0]
			name := sel.Sel.Name
			in.needRT = true
			switch {
			case hasPrefix(name, "Load"):
				return nil, []ast.Stmt{rtCall("AtomicLoad", unsafeCast(ptr))}, true
			case hasPrefix(name, "Store"):
				return []ast.Stmt{rtCall("AtomicStore", unsafeCast(ptr))}, nil, true
			case hasPrefix(name, "Add"), hasPrefix(name, "Swap"),
				hasPrefix(name, "CompareAndSwap"), hasPrefix(name, "Or"), hasPrefix(name, "And"):
				return nil, []ast.Stmt{rtCall("AtomicRMW", unsafeCast(ptr))}, true
			}
			in.needRT = false
			return nil, nil, false
		}
	}

	kind, method := in.syncMethod(sel)
	if kind == "" {
		return nil, nil, false
	}
	h := func(name string) ast.Stmt { return rtCall(name, in.unsafeRecv(sel.X)) }
	switch kind {
	case "Mutex":
		switch method {
		case "Lock":
			in.needRT = true
			return nil, []ast.Stmt{h("LockAcquire")}, true
		case "Unlock":
			in.needRT = true
			return []ast.Stmt{h("LockRelease")}, nil, true
		}
	case "RWMutex":
		switch method {
		case "Lock":
			in.needRT = true
			return nil, []ast.Stmt{h("RWLock")}, true
		case "Unlock":
			in.needRT = true
			return []ast.Stmt{h("RWUnlock")}, nil, true
		case "RLock":
			in.needRT = true
			return nil, []ast.Stmt{h("RWRLock")}, true
		case "RUnlock":
			in.needRT = true
			return []ast.Stmt{h("RWRUnlock")}, nil, true
		}
	case "WaitGroup":
		switch method {
		case "Done":
			in.needRT = true
			return []ast.Stmt{h("WGDone")}, nil, true
		case "Wait":
			in.needRT = true
			return nil, []ast.Stmt{h("WGWait")}, true
		}
	case "Once":
		// once.Do(f) cannot be hooked around: the release must land
		// inside the Once's critical section (before any other caller
		// observes completion), so the call is replaced wholesale with
		// rt.OnceDo, which performs the real Do with the edges in place.
		if method == "Do" && len(call.Args) == 1 {
			in.needRT = true
			arg := call.Args[0]
			in.readHooks(arg, &pre)
			call.Fun = rtSel("OnceDo")
			call.Args = []ast.Expr{in.recvPtr(sel.X), arg}
			return pre, nil, true
		}
	default:
		if hasPrefix(kind, "atomic.") {
			in.needRT = true
			switch {
			case method == "Load":
				return nil, []ast.Stmt{h("AtomicLoad")}, true
			case method == "Store":
				return []ast.Stmt{h("AtomicStore")}, nil, true
			case method == "Add" || method == "Swap" || method == "Or" ||
				method == "And" || hasPrefix(method, "CompareAndSwap"):
				return nil, []ast.Stmt{h("AtomicRMW")}, true
			}
			in.needRT = false
		}
	}
	return nil, nil, false
}

// valueReceiverCall reports whether sel is a method call that copies its
// receiver (value receiver), i.e. genuinely reads it.
func (in *instrumenter) valueReceiverCall(sel *ast.SelectorExpr) bool {
	s, ok := in.info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	sig, ok := s.Obj().Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ptr := sig.Recv().Type().(*types.Pointer)
	return !ptr
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// unsafeCast wraps an already-pointer expression (atomic's &x argument)
// as unsafe.Pointer.
func unsafeCast(p ast.Expr) ast.Expr {
	return &ast.CallExpr{
		Fun:  &ast.SelectorExpr{X: ast.NewIdent(unsafeName), Sel: ast.NewIdent("Pointer")},
		Args: []ast.Expr{p},
	}
}
