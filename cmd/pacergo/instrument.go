package main

// Package discovery, type-checking, and overlay assembly. pacergo never
// modifies user source: instrumented files are printed into a temp
// directory and handed to the go tool through -overlay, which substitutes
// file contents while compiling under the original paths.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/printer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` output pacergo consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	ForTest      string
	Export       string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path, Dir string }
}

// goList runs `go list` with the given extra flags and returns the
// decoded package stream.
func goList(verbose bool, extra []string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list"}, extra...)
	args = append(args, "--")
	args = append(args, patterns...)
	if verbose {
		fmt.Fprintf(os.Stderr, "pacergo: go %s\n", strings.Join(args, " "))
	}
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goListPaths resolves patterns to import paths.
func goListPaths(verbose bool, patterns []string) ([]string, error) {
	args := append([]string{"list", "--"}, patterns...)
	if verbose {
		fmt.Fprintf(os.Stderr, "pacergo: go %s\n", strings.Join(args, " "))
	}
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}
	return strings.Fields(string(out)), nil
}

// instrumentPackages instruments every package matching patterns (plus
// their test files when tests is set) and returns the path of the overlay
// file. The caller removes tmpDir when the build is done.
func instrumentPackages(patterns []string, tests, verbose bool) (overlayPath, tmpDir string, err error) {
	// Pass 1: which import paths did the user name?
	targetPaths, err := goListPaths(verbose, patterns)
	if err != nil {
		return "", "", err
	}
	targetSet := make(map[string]bool, len(targetPaths))
	for _, ip := range targetPaths {
		targetSet[ip] = true
	}

	// Pass 2: the full dependency closure with export data, so the
	// targets can be type-checked against compiled imports.
	flags := []string{"-json", "-export", "-deps"}
	if tests {
		flags = append(flags, "-test")
	}
	all, err := goList(verbose, flags, patterns)
	if err != nil {
		return "", "", err
	}

	exports := make(map[string]string)
	// testVariant[path] = export file of "path [path.test]", the package
	// extended with its _test.go files — what an external test package
	// actually imports.
	testVariant := make(map[string]string)
	var targets []*listPkg
	hasAugmented := make(map[string]bool)
	for _, p := range all {
		if p.Export != "" {
			if p.ForTest == "" {
				exports[p.ImportPath] = p.Export
			} else if !strings.HasSuffix(p.Name, "_test") {
				testVariant[p.ForTest] = p.Export
			}
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // the generated test main package
		}
		switch {
		case tests && p.ForTest != "" && targetSet[p.ForTest]:
			targets = append(targets, p)
			if !strings.HasSuffix(p.Name, "_test") {
				hasAugmented[p.ForTest] = true
			}
		case p.ForTest == "" && targetSet[p.ImportPath]:
			targets = append(targets, p)
		}
	}
	if tests {
		// Drop the plain variant of packages that have an augmented
		// (test-extended) variant: the augmented one covers its files.
		kept := targets[:0]
		for _, p := range targets {
			if p.ForTest == "" && hasAugmented[p.ImportPath] {
				continue
			}
			kept = append(kept, p)
		}
		targets = kept
	}
	if len(targets) == 0 {
		return "", "", fmt.Errorf("no instrumentable packages match %v", patterns)
	}

	tmpDir, err = os.MkdirTemp("", "pacergo-")
	if err != nil {
		return "", "", err
	}
	defer func() {
		if err != nil {
			os.RemoveAll(tmpDir)
		}
	}()

	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", envOr("GOARCH", runtime.GOARCH))
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	replace := make(map[string]string)
	fileSeq := 0

	for _, entry := range targets {
		files, parsed, skipped, perr := parseEntry(fset, entry, tests)
		if perr != nil {
			return "", "", perr
		}
		if len(parsed) == 0 {
			continue
		}
		pkg, info, terr := typecheck(fset, entry, parsed, exports, testVariant, sizes)
		if terr != nil {
			return "", "", fmt.Errorf("type-checking %s: %v", entry.ImportPath, terr)
		}
		in := &instrumenter{
			fset:  fset,
			info:  info,
			pkg:   pkg,
			sizes: sizes,
			done:  make(map[*ast.BlockStmt]bool),
		}
		in.analyzeShared(parsed)
		for i, f := range parsed {
			out, changed := in.instrumentFile(f, files[i], moduleDir(entry))
			if !changed {
				continue
			}
			fileSeq++
			dst := filepath.Join(tmpDir, fmt.Sprintf("f%d_%s", fileSeq, filepath.Base(files[i])))
			if werr := os.WriteFile(dst, out, 0o644); werr != nil {
				return "", "", werr
			}
			replace[files[i]] = dst
			if verbose {
				fmt.Fprintf(os.Stderr, "pacergo: instrumented %s\n", files[i])
			}
		}
		if verbose && len(skipped) > 0 {
			fmt.Fprintf(os.Stderr, "pacergo: passed through uninstrumented: %s\n",
				strings.Join(skipped, ", "))
		}
	}
	if len(replace) == 0 {
		return "", "", fmt.Errorf("nothing to instrument in %v", patterns)
	}

	overlay := struct {
		Replace map[string]string
	}{Replace: replace}
	ob, err := json.MarshalIndent(overlay, "", "  ")
	if err != nil {
		return "", "", err
	}
	overlayPath = filepath.Join(tmpDir, "overlay.json")
	if err = os.WriteFile(overlayPath, ob, 0o644); err != nil {
		return "", "", err
	}
	return overlayPath, tmpDir, nil
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func moduleDir(p *listPkg) string {
	if p.Module != nil && p.Module.Dir != "" {
		return p.Module.Dir
	}
	return p.Dir
}

// parseEntry parses the source files of one go list entry: GoFiles plus
// TestGoFiles and XTestGoFiles (go list splits them across variants, and
// some variants pre-merge them — the union deduplicates). Files that
// import "embed" are passed through uninstrumented: the rewriter strips
// comments, which would strip //go:embed directives.
func parseEntry(fset *token.FileSet, p *listPkg, tests bool) (paths []string, parsed []*ast.File, skipped []string, err error) {
	seen := make(map[string]bool)
	var list []string
	groups := [][]string{p.GoFiles}
	if tests {
		// Test files reference the testing package, whose export data is
		// only in the closure when go list ran with -test.
		groups = append(groups, p.TestGoFiles, p.XTestGoFiles)
	}
	for _, group := range groups {
		for _, f := range group {
			if !seen[f] {
				seen[f] = true
				list = append(list, f)
			}
		}
	}
	sort.Strings(list)
	wantName := p.Name
	for _, f := range list {
		full := f
		if !filepath.IsAbs(full) {
			full = filepath.Join(p.Dir, f)
		}
		af, perr := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, fmt.Errorf("parsing %s: %v", full, perr)
		}
		// A test-variant entry's union can include files of the other
		// package (pkg vs pkg_test); keep only this entry's package.
		if wantName != "" && af.Name.Name != wantName {
			continue
		}
		if importsAny(af, "embed") {
			skipped = append(skipped, f)
			continue
		}
		paths = append(paths, full)
		parsed = append(parsed, af)
	}
	return paths, parsed, skipped, nil
}

func importsAny(f *ast.File, paths ...string) bool {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		for _, want := range paths {
			if p == want {
				return true
			}
		}
	}
	return false
}

// typecheck checks one entry's files against the export data go list
// produced for its dependencies. An external test package's import of the
// package under test resolves to the test-extended variant, which is how
// export_test.go identifiers stay visible.
func typecheck(fset *token.FileSet, entry *listPkg, files []*ast.File,
	exports, testVariant map[string]string, sizes types.Sizes) (*types.Package, *types.Info, error) {

	isXTest := strings.HasSuffix(entry.Name, "_test")
	lookup := func(path string) (io.ReadCloser, error) {
		if isXTest && path == entry.ForTest {
			if ex := testVariant[path]; ex != "" {
				return os.Open(ex)
			}
		}
		ex := exports[path]
		if ex == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ex)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    sizes,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	path := entry.ImportPath
	if i := strings.IndexByte(path, ' '); i > 0 {
		path = path[:i] // strip the " [pkg.test]" variant suffix
	}
	if isXTest {
		path += "_test"
	}
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// instrumentFile rewrites one parsed file and renders it. changed=false
// means the file needs no overlay entry (nothing instrumentable).
func (in *instrumenter) instrumentFile(f *ast.File, path, modDir string) ([]byte, bool) {
	rel, err := filepath.Rel(modDir, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = filepath.Base(path)
	}
	in.fileName = filepath.ToSlash(rel)
	in.sites = make(map[string]string)
	in.siteOrder = nil
	in.needRT = false

	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		in.rewriteBlock(fd.Body)
	}

	if !in.needRT && len(in.siteOrder) == 0 {
		return nil, false
	}

	// An instrumented main flushes buffered reports on the way out.
	if f.Name.Name == "main" {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "main" && fd.Body != nil {
				fd.Body.List = append([]ast.Stmt{
					&ast.DeferStmt{Call: &ast.CallExpr{Fun: rtSel("Flush")}},
				}, fd.Body.List...)
			}
		}
	}

	injectImports(f)
	appendSiteDecls(f, in)

	// Comments cannot survive statement insertion (the printer places
	// them by position, which the rewrite invalidated); keep only the
	// header groups before the package clause, which carry build
	// constraints.
	var keep []*ast.CommentGroup
	for _, g := range f.Comments {
		if g.End() < f.Package {
			keep = append(keep, g)
		}
	}
	f.Comments = keep
	f.Doc = nil

	var buf bytes.Buffer
	cfg := printer.Config{Tabwidth: 8}
	if err := cfg.Fprint(&buf, in.fset, f); err != nil {
		panic(fmt.Sprintf("pacergo: printing %s: %v", path, err))
	}
	return buf.Bytes(), true
}

// injectImports prepends the runtime-shim and unsafe imports. The blank
// unsafe use keeps the import legal in files whose hooks happen not to
// need it.
func injectImports(f *ast.File) {
	imp := &ast.GenDecl{
		Tok: token.IMPORT,
		Specs: []ast.Spec{
			&ast.ImportSpec{
				Name: ast.NewIdent(rtName),
				Path: &ast.BasicLit{Kind: token.STRING, Value: quote(rtPath)},
			},
			&ast.ImportSpec{
				Name: ast.NewIdent(unsafeName),
				Path: &ast.BasicLit{Kind: token.STRING, Value: quote("unsafe")},
			},
		},
	}
	f.Decls = append([]ast.Decl{imp}, f.Decls...)
}

func quote(s string) string { return fmt.Sprintf("%q", s) }

// appendSiteDecls emits the generated site table: one package-level var
// per instrumented source position, interned in the runtime depot before
// main runs.
func appendSiteDecls(f *ast.File, in *instrumenter) {
	decl := &ast.GenDecl{Tok: token.VAR}
	// Always-used anchors: unsafe may be otherwise unused, and a file
	// with hooks but no sites still imports rt.
	decl.Specs = append(decl.Specs, &ast.ValueSpec{
		Names: []*ast.Ident{ast.NewIdent("_")},
		Type: &ast.SelectorExpr{
			X: ast.NewIdent(unsafeName), Sel: ast.NewIdent("Pointer"),
		},
	})
	decl.Specs = append(decl.Specs, &ast.ValueSpec{
		Names:  []*ast.Ident{ast.NewIdent("_")},
		Values: []ast.Expr{rtSel("Site")},
	})
	for _, key := range in.siteOrder {
		loc := fmt.Sprintf("%s:%s", in.fileName, key)
		decl.Specs = append(decl.Specs, &ast.ValueSpec{
			Names: []*ast.Ident{ast.NewIdent(in.sites[key])},
			Values: []ast.Expr{&ast.CallExpr{
				Fun:  rtSel("Site"),
				Args: []ast.Expr{&ast.BasicLit{Kind: token.STRING, Value: quote(loc)}},
			}},
		})
	}
	f.Decls = append(f.Decls, decl)
}
