// Command pacergo is the front door for running PACER on real Go
// programs: it instruments packages with detector hooks at the AST level
// and drives the standard go tool with a build overlay, so user source is
// never modified on disk.
//
// Usage:
//
//	pacergo [flags] run   <package> [args...]
//	pacergo [flags] test  [test flags] <packages>
//	pacergo [flags] build [build flags] <packages>
//
// Flags:
//
//	-rate r    sampling rate in [0,1] (default 1)
//	-algo a    detection backend (default "pacer"; see pacer.Options)
//	-seed n    sampling seed (default 1)
//	-out path  append JSON-lines race reports to path
//	-quiet     suppress stderr race reports
//	-fleet url push reports to a pacerd collector
//	-keep      keep the instrumented sources and print their directory
//	-v         log what gets instrumented
//
// Flags map onto the PACER_* environment read by pacer/internal/rt; an
// explicit flag overrides the inherited environment variable. For
// `build`, configuration is read at run time from the environment of the
// produced binary instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
)

func main() {
	fs := flag.NewFlagSet("pacergo", flag.ExitOnError)
	rate := fs.Float64("rate", 1.0, "sampling rate in [0,1]")
	algo := fs.String("algo", "pacer", "detection backend")
	seed := fs.Int("seed", 1, "sampling seed")
	out := fs.String("out", "", "append JSON-lines race reports to this path")
	quiet := fs.Bool("quiet", false, "suppress stderr race reports")
	fleetURL := fs.String("fleet", "", "push reports to this pacerd collector URL")
	keep := fs.Bool("keep", false, "keep instrumented sources, print their directory")
	verbose := fs.Bool("v", false, "log what gets instrumented")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pacergo [flags] run|test|build <packages> [args...]\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	args := fs.Args()
	if len(args) < 2 {
		fs.Usage()
		os.Exit(2)
	}
	sub := args[0]
	rest := args[1:]
	switch sub {
	case "run", "test", "build":
	default:
		fmt.Fprintf(os.Stderr, "pacergo: unknown command %q (want run, test, or build)\n", sub)
		os.Exit(2)
	}

	// Which arguments name packages? `go run` takes exactly one package
	// followed by program arguments; test and build take flags and
	// patterns in any order (use flag=value forms so patterns are
	// recognizable).
	var patterns []string
	if sub == "run" {
		patterns = []string{rest[0]}
	} else {
		for _, a := range rest {
			if len(a) > 0 && a[0] != '-' {
				patterns = append(patterns, a)
			}
		}
		if len(patterns) == 0 {
			patterns = []string{"."}
			rest = append(rest, ".")
		}
	}

	overlay, tmpDir, err := instrumentPackages(patterns, sub == "test", *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pacergo: %v\n", err)
		os.Exit(1)
	}
	cleanup := func() {
		if *keep {
			fmt.Fprintf(os.Stderr, "pacergo: instrumented sources kept in %s\n", tmpDir)
		} else {
			os.RemoveAll(tmpDir)
		}
	}

	goArgs := append([]string{sub, "-overlay", overlay}, rest...)
	cmd := exec.Command("go", goArgs...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Env = childEnv(fs, *rate, *algo, *seed, *out, *quiet, *fleetURL)
	if *verbose {
		fmt.Fprintf(os.Stderr, "pacergo: go")
		for _, a := range goArgs {
			fmt.Fprintf(os.Stderr, " %s", a)
		}
		fmt.Fprintln(os.Stderr)
	}
	err = cmd.Run()
	cleanup()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "pacergo: %v\n", err)
		os.Exit(1)
	}
}

// childEnv builds the child process environment: the inherited
// environment with PACER_* entries overridden by explicitly-set flags
// (and populated from defaults where the environment says nothing).
func childEnv(fs *flag.FlagSet, rate float64, algo string, seed int, out string, quiet bool, fleetURL string) []string {
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	env := os.Environ()
	set := func(flagName, key, val string) {
		if !explicit[flagName] && os.Getenv(key) != "" {
			return // environment wins over a defaulted flag
		}
		if val == "" {
			return
		}
		env = append(env, key+"="+val)
	}
	set("rate", "PACER_RATE", strconv.FormatFloat(rate, 'g', -1, 64))
	set("algo", "PACER_ALGO", algo)
	set("seed", "PACER_SEED", strconv.Itoa(seed))
	set("out", "PACER_OUT", out)
	if quiet {
		set("quiet", "PACER_QUIET", "1")
	}
	set("fleet", "PACER_FLEET", fleetURL)
	return env
}
