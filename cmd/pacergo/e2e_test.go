// End-to-end tests for the pacergo front door: build the wrapper once,
// then drive real programs through `pacergo run|test|build` and assert
// on the machine-readable PACER_OUT stream.
//
// The oracle-label suite mirrors the generated-trace conformance layer
// one level up the stack: testdata/programs/* port scenario shapes from
// internal/tracegen into real Go sources, with the expected verdict
// encoded in the directory name (race_* / norace_*). At rate 1 the front
// door must agree with every label; the proportionality test then checks
// that at rate 0.25 the detection frequency over many runs is binomially
// consistent with 0.25.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"pacer/internal/stats"
)

var (
	pacergoBin string
	repoRoot   string
)

func TestMain(m *testing.M) {
	root, err := filepath.Abs("../..")
	if err != nil {
		fmt.Fprintf(os.Stderr, "e2e: resolving repo root: %v\n", err)
		os.Exit(1)
	}
	repoRoot = root
	tmp, err := os.MkdirTemp("", "pacergo-e2e-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "e2e: %v\n", err)
		os.Exit(1)
	}
	pacergoBin = filepath.Join(tmp, "pacergo")
	cmd := exec.Command("go", "build", "-o", pacergoBin, "./cmd/pacergo")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "e2e: building pacergo: %v\n%s", err, out)
		os.RemoveAll(tmp)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}

// raceLine mirrors the jsonRace schema written to PACER_OUT by
// internal/rt: one distinct race per line.
type raceLine struct {
	Var    uint32     `json:"var"`
	Kind   string     `json:"kind"`
	First  accessLine `json:"first"`
	Second accessLine `json:"second"`
}

type accessLine struct {
	Op     string   `json:"op"`
	Site   string   `json:"site"`
	Thread uint32   `json:"thread"`
	Stack  []string `json:"stack"`
}

func parseRaces(t *testing.T, path string) []raceLine {
	t.Helper()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatalf("reading PACER_OUT: %v", err)
	}
	var races []raceLine
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var r raceLine
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad PACER_OUT line %q: %v", line, err)
		}
		races = append(races, r)
	}
	return races
}

// frontDoor runs `pacergo [flags] <sub> <pkg>` from the repo root at the
// given rate with deterministic seed and backend, collecting the JSON
// race stream. Race reports never fail the child, so a non-zero exit is
// a test failure.
func frontDoor(t *testing.T, sub string, rate float64, pkg string) (races []raceLine, stdout string) {
	t.Helper()
	outPath := filepath.Join(t.TempDir(), "races.json")
	args := []string{
		fmt.Sprintf("-rate=%g", rate), "-algo=pacer", "-seed=1",
		"-quiet", "-out=" + outPath, sub,
	}
	if sub == "test" {
		args = append(args, "-count=1")
	}
	args = append(args, pkg)
	cmd := exec.Command(pacergoBin, args...)
	cmd.Dir = repoRoot
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("pacergo %s %s: %v\nstderr:\n%s", sub, pkg, err, errb.String())
	}
	return parseRaces(t, outPath), out.String()
}

// TestPlantedRaceAtRateOne is the quick-gate scenario: at rate 1 the
// planted race — and only the planted race — is reported, and both
// stacks resolve to file:line in the original source.
func TestPlantedRaceAtRateOne(t *testing.T) {
	races, stdout := frontDoor(t, "run", 1, "./examples/planted")
	if !strings.Contains(stdout, "racy=200 guarded=200") {
		t.Errorf("program output corrupted by instrumentation: %q", stdout)
	}
	if len(races) == 0 {
		t.Fatal("planted race not reported at rate 1")
	}
	const racySite = "examples/planted/main.go:30"
	frameRE := regexp.MustCompile(`\.(go|s):\d+ \(.+\)$`)
	for _, r := range races {
		for _, acc := range []accessLine{r.First, r.Second} {
			if acc.Site != racySite {
				t.Errorf("race reported off the planted site: %s (%s, kind %s)", acc.Site, acc.Op, r.Kind)
			}
			if len(acc.Stack) < 2 {
				t.Errorf("stack for %s access too shallow: %v", acc.Op, acc.Stack)
				continue
			}
			if !strings.HasPrefix(acc.Stack[0], racySite+" (") {
				t.Errorf("stack frame 0 = %q, want the planted site %s", acc.Stack[0], racySite)
			}
			for _, fr := range acc.Stack {
				if !frameRE.MatchString(fr) {
					t.Errorf("frame %q is not symbolized to file:line (func)", fr)
				}
			}
		}
	}
}

// TestPlantedSilentAtRateZero: at rate 0 nothing is sampled, so nothing
// may be reported — and the program must still run correctly.
func TestPlantedSilentAtRateZero(t *testing.T) {
	races, stdout := frontDoor(t, "run", 0, "./examples/planted")
	if !strings.Contains(stdout, "racy=200 guarded=200") {
		t.Errorf("program output corrupted by instrumentation: %q", stdout)
	}
	if len(races) != 0 {
		t.Errorf("rate 0 reported %d races, want none: %+v", len(races), races)
	}
}

// TestProgramsMatchOracleLabels runs every ported scenario program under
// testdata/programs at rate 1 and checks the verdict against the label
// in the directory name. Directories containing a _test.go go through
// `pacergo test`; plain main packages through `pacergo run`.
func TestProgramsMatchOracleLabels(t *testing.T) {
	dir := filepath.Join(repoRoot, "testdata", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		var want bool
		switch {
		case strings.HasPrefix(name, "race_"):
			want = true
		case strings.HasPrefix(name, "norace_"):
			want = false
		default:
			t.Errorf("testdata/programs/%s: name must start with race_ or norace_", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sub := "run"
			if m, _ := filepath.Glob(filepath.Join(dir, name, "*_test.go")); len(m) > 0 {
				sub = "test"
			}
			races, _ := frontDoor(t, sub, 1, "./testdata/programs/"+name)
			if got := len(races) > 0; got != want {
				t.Fatalf("oracle label %s: got %d reported races, want reported=%v", name, len(races), want)
			}
			prefix := "testdata/programs/" + name + "/"
			for _, r := range races {
				for _, acc := range []accessLine{r.First, r.Second} {
					if !strings.HasPrefix(acc.Site, prefix) {
						t.Errorf("race site %s outside the program's sources", acc.Site)
					}
				}
			}
		})
	}
}

// TestSamplingProportional measures PACER's headline property through
// the front door: build race_plain (exactly one dynamic racy pair per
// execution) once, run it many times at rate 0.25 with distinct seeds,
// and check the observed detection frequency against the binomial 95%
// interval around 0.25, widened 1.5x so the expected false-failure rate
// is negligible across CI runs.
func TestSamplingProportional(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sampling measurement skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "race_plain")
	cmd := exec.Command(pacergoBin, "build", "-o="+bin, "./testdata/programs/race_plain")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("pacergo build: %v\n%s", err, out)
	}

	const (
		rate = 0.25
		n    = 120
	)
	outDir := t.TempDir()
	hits := make([]bool, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outPath := filepath.Join(outDir, fmt.Sprintf("run%d.json", i))
			run := exec.Command(bin)
			run.Env = append(os.Environ(),
				fmt.Sprintf("PACER_RATE=%g", rate),
				"PACER_ALGO=pacer",
				fmt.Sprintf("PACER_SEED=%d", i+1),
				"PACER_QUIET=1",
				"PACER_OUT="+outPath,
			)
			if out, err := run.CombinedOutput(); err != nil {
				t.Errorf("run %d: %v\n%s", i, err, out)
				return
			}
			if st, err := os.Stat(outPath); err == nil && st.Size() > 0 {
				hits[i] = true
			}
		}(i)
	}
	wg.Wait()

	detected := 0
	for _, h := range hits {
		if h {
			detected++
		}
	}
	measured := float64(detected) / n
	tol := 1.5 * stats.BinomialCI(rate, n)
	t.Logf("detection rate %.3f over %d runs at rate %.2f (tolerance ±%.3f)", measured, n, rate, tol)
	if measured < rate-tol || measured > rate+tol {
		t.Errorf("detection rate %.3f not proportional to sampling rate %.2f (±%.3f over %d runs)",
			measured, rate, tol, n)
	}
}
