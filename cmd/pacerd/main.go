// Command pacerd is the fleet race-report collector: the daemon side of
// the paper's deployment story (Section 1), where many production
// instances each sample at a low rate and their reports combine into a
// fleet-wide triage list.
//
// Instances run a fleet.Reporter pointed at this daemon. Pushes flow
// through the production ingest pipeline (internal/ingest):
//
//	decode → authenticate → rate-limit → load-shed → merge
//
// with a retry-wrapped, circuit-breaker-guarded merge into sharded,
// memory-bounded per-instance state. pacerd serves:
//
//	POST /v1/push  — accept one gzip JSON snapshot, cumulative (v1) or
//	                 delta (v2; see docs/fleet.md). Acks advertise delta
//	                 capability via the Pacer-Protocol header.
//	GET  /races    — the merged fleet-wide triage list as JSON
//	GET  /healthz  — liveness
//	GET  /metrics  — Prometheus text metrics (pacer_ingest_* pipeline
//	                 counters plus the pacer_collector_* continuity set)
//
// With -auth-token set, /v1/push additionally requires the matching
// "Authorization: Bearer <token>" header (reporters send it via
// ReporterOptions.AuthToken); unauthenticated pushes get 401.
//
// With -state-dir set, pacerd persists its state there periodically and
// on shutdown (atomic rename, versioned format) and restores it on boot,
// so a restart loses zero triage entries and delta chains continue
// across it.
//
// With -instance-ttl set, instances that stop pushing drop out of /races
// and /metrics once unseen for that long. -max-state-bytes bounds the
// collector's memory: over the bound, the least-recently-seen instances
// are evicted whole (triage state and sequence tracking together).
//
// pacerd shuts down gracefully on SIGTERM/SIGINT: in-flight requests get
// -shutdown-timeout to complete, then the final state snapshot is
// written before exit.
//
// Usage:
//
//	pacerd -listen :9120 -state-dir /var/lib/pacerd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pacer/internal/fleet"
	"pacer/internal/ingest"
)

func main() {
	listen := flag.String("listen", ":9120", "address to listen on")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight requests on SIGTERM/SIGINT")
	maxBody := flag.Int64("max-push-bytes", 8<<20,
		"largest accepted compressed push body, in bytes")
	maxInflated := flag.Int64("max-push-decompressed-bytes", 0,
		"largest accepted push after gzip inflation, in bytes (0 = 10x max-push-bytes)")
	authToken := flag.String("auth-token", "",
		"when set, /v1/push requires 'Authorization: Bearer <token>' with this token (reporters set ReporterOptions.AuthToken)")
	instanceTTL := flag.Duration("instance-ttl", 0,
		"expire instances not seen for this long from /races and /metrics, e.g. 24h (0 = keep forever)")
	stateDir := flag.String("state-dir", "",
		"directory to persist collector state in (restored on boot; empty = in-memory only)")
	snapshotInterval := flag.Duration("snapshot-interval", 30*time.Second,
		"how often to persist state to -state-dir (a final snapshot is always written on shutdown)")
	shards := flag.Int("shards", 16,
		"state shard count (rounded up to a power of two); pushes to different instances never share a lock")
	maxStateBytes := flag.Int64("max-state-bytes", 256<<20,
		"collector state memory bound; over it, least-recently-seen instances are evicted whole")
	pushRate := flag.Float64("push-rate", 0,
		"per-instance push rate limit in pushes/second (0 = unlimited)")
	pushBurst := flag.Float64("push-burst", 0,
		"per-instance push burst capacity (0 = 2x push-rate)")
	queueDepth := flag.Int("queue-depth", 256,
		"pushes waiting for a merge worker before load-shedding with 503")
	mergeWorkers := flag.Int("merge-workers", 4, "merge worker-pool size")
	breakerFailures := flag.Int("breaker-failures", 5,
		"consecutive merge failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second,
		"how long the opened breaker fails fast before probing the merge again")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: pacerd [-listen addr] [-state-dir dir] [flags]; see pacerd -h\n")
		os.Exit(2)
	}
	log.SetPrefix("pacerd: ")
	log.SetFlags(log.LstdFlags | log.LUTC)

	svc, err := ingest.New(ingest.Options{
		State: ingest.StateOptions{
			Shards:      *shards,
			MaxBytes:    *maxStateBytes,
			InstanceTTL: *instanceTTL,
		},
		MaxBodyBytes:         *maxBody,
		MaxDecompressedBytes: *maxInflated,
		AuthToken:            *authToken,
		PushRate:             *pushRate,
		PushBurst:            *pushBurst,
		QueueDepth:           *queueDepth,
		MergeWorkers:         *mergeWorkers,
		BreakerThreshold:     *breakerFailures,
		BreakerCooldown:      *breakerCooldown,
		StateDir:             *stateDir,
		SnapshotInterval:     *snapshotInterval,
		OnError:              func(err error) { log.Printf("background: %v", err) },
	})
	if err != nil {
		log.Fatalf("starting ingest tier: %v", err)
	}
	if *authToken != "" {
		log.Printf("push authentication enabled (bearer token)")
	}
	if *instanceTTL > 0 {
		log.Printf("instance retention enabled: expiring instances unseen for %v", *instanceTTL)
	}
	if *stateDir != "" {
		n := svc.State().Instances()
		log.Printf("state persistence enabled in %s (every %v); restored %d instance(s)",
			*stateDir, *snapshotInterval, n)
	}
	if *pushRate > 0 {
		log.Printf("per-instance rate limit enabled: %.3g pushes/s", *pushRate)
	}

	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("collecting race reports on http://%s (push %s, triage /races)",
		ln.Addr(), fleet.PushPath)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("received %v, draining for up to %v", sig, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
			svc.Close() // still try to persist what we hold
			os.Exit(1)
		}
		// The listener is drained; stop the merge workers and write the
		// final state snapshot so the successor boots from exactly here.
		if err := svc.Close(); err != nil {
			log.Printf("final state snapshot: %v", err)
			os.Exit(1)
		}
		if agg, err := svc.State().Merged(); err == nil {
			log.Printf("shut down cleanly with %d distinct race(s) on file", agg.Distinct())
		} else {
			log.Printf("shut down cleanly")
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}
