// Command pacerd is the fleet race-report collector: the daemon side of
// the paper's deployment story (Section 1), where many production
// instances each sample at a low rate and their reports combine into a
// fleet-wide triage list.
//
// Instances run a fleet.Reporter pointed at this daemon; pacerd keeps the
// latest snapshot per instance and serves:
//
//	POST /v1/push  — accept one gzip JSON snapshot (see docs/fleet.md)
//	GET  /races    — the merged fleet-wide triage list as JSON
//	GET  /healthz  — liveness
//	GET  /metrics  — Prometheus text metrics (pushes accepted/rejected,
//	                 instances, distinct races, per-instance last-seen)
//
// With -auth-token set, /v1/push additionally requires the matching
// "Authorization: Bearer <token>" header (reporters send it via
// ReporterOptions.AuthToken); unauthenticated pushes get 401 and count in
// the pacer_collector_unauthorized_total metric.
//
// With -instance-ttl set, instances that stop pushing drop out of /races
// and /metrics once unseen for that long (lazy expiry, counted in
// pacer_collector_instances_expired_total); by default snapshots are kept
// for the daemon's lifetime.
//
// pacerd shuts down gracefully on SIGTERM/SIGINT: in-flight requests get
// -shutdown-timeout to complete before the listener is torn down.
//
// Usage:
//
//	pacerd -listen :9120
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pacer/internal/fleet"
)

func main() {
	listen := flag.String("listen", ":9120", "address to listen on")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight requests on SIGTERM/SIGINT")
	maxBody := flag.Int64("max-push-bytes", 8<<20,
		"largest accepted compressed push body, in bytes")
	maxInflated := flag.Int64("max-push-decompressed-bytes", 0,
		"largest accepted push after gzip inflation, in bytes (0 = 10x max-push-bytes)")
	authToken := flag.String("auth-token", "",
		"when set, /v1/push requires 'Authorization: Bearer <token>' with this token (reporters set ReporterOptions.AuthToken)")
	instanceTTL := flag.Duration("instance-ttl", 0,
		"expire instances not seen for this long from /races and /metrics, e.g. 24h (0 = keep forever)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: pacerd [-listen addr] [-shutdown-timeout d] [-max-push-bytes n] [-max-push-decompressed-bytes n] [-auth-token t] [-instance-ttl d]\n")
		os.Exit(2)
	}
	log.SetPrefix("pacerd: ")
	log.SetFlags(log.LstdFlags | log.LUTC)

	col := fleet.NewCollector(fleet.CollectorOptions{
		MaxBodyBytes:         *maxBody,
		MaxDecompressedBytes: *maxInflated,
		AuthToken:            *authToken,
		InstanceTTL:          *instanceTTL,
	})
	if *authToken != "" {
		log.Printf("push authentication enabled (bearer token)")
	}
	if *instanceTTL > 0 {
		log.Printf("instance retention enabled: expiring instances unseen for %v", *instanceTTL)
	}
	srv := &http.Server{
		Handler:           col.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("collecting race reports on http://%s (push %s, triage /races)",
		ln.Addr(), fleet.PushPath)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("received %v, draining for up to %v", sig, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		if agg, err := col.Merged(); err == nil {
			log.Printf("shut down cleanly with %d distinct race(s) on file", agg.Distinct())
		} else {
			log.Printf("shut down cleanly")
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}
