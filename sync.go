package pacer

import "sync"

// WaitGroup is a sync.WaitGroup whose completion edges are reported to the
// detector: every Done happens before the return of any Wait that observed
// it, exactly like the real primitive. Internally each Done publishes
// through a volatile and Wait consumes it, so a worker's writes before
// Done never race with the waiter's reads after Wait.
type WaitGroup struct {
	d  *Detector
	vx VolatileID
	wg sync.WaitGroup
}

// NewWaitGroup returns an instrumented wait group.
func (p *Detector) NewWaitGroup() *WaitGroup {
	return &WaitGroup{d: p, vx: p.NewVolatileID()}
}

// Add adds delta to the counter.
func (w *WaitGroup) Add(delta int) { w.wg.Add(delta) }

// Done decrements the counter on behalf of thread t, publishing t's work.
func (w *WaitGroup) Done(t ThreadID) {
	w.d.VolWrite(t, w.vx)
	w.wg.Done()
}

// Wait blocks until the counter is zero, then receives every Done-er's
// published work on behalf of thread t.
func (w *WaitGroup) Wait(t ThreadID) {
	w.wg.Wait()
	w.d.VolRead(t, w.vx)
}

// RWMutex is a sync.RWMutex with the real primitive's happens-before
// semantics reported to the detector:
//
//   - an Unlock happens before any later RLock or Lock;
//   - an RUnlock happens before any later Lock;
//   - readers are not ordered with each other.
//
// The model uses a lock for writer mutual exclusion plus two volatiles:
// writers publish through one (consumed by readers and writers), readers
// publish through the other (consumed by writers, whose volatile write
// accumulates every reader's history).
type RWMutex struct {
	d    *Detector
	m    LockID
	wPub VolatileID // writers publish, readers+writers consume
	rPub VolatileID // readers publish, writers consume
	mu   sync.RWMutex
}

// NewRWMutex returns an instrumented reader/writer mutex.
func (p *Detector) NewRWMutex() *RWMutex {
	return &RWMutex{d: p, m: p.NewLockID(), wPub: p.NewVolatileID(), rPub: p.NewVolatileID()}
}

// Lock acquires the write lock on behalf of thread t.
func (r *RWMutex) Lock(t ThreadID) {
	r.mu.Lock()
	r.d.Acquire(t, r.m)
	r.d.VolRead(t, r.rPub) // receive every reader's history
	r.d.VolRead(t, r.wPub) // and the previous writer's
}

// Unlock releases the write lock on behalf of thread t.
func (r *RWMutex) Unlock(t ThreadID) {
	r.d.VolWrite(t, r.wPub) // publish to later readers and writers
	r.d.Release(t, r.m)
	r.mu.Unlock()
}

// RLock acquires the read lock on behalf of thread t.
func (r *RWMutex) RLock(t ThreadID) {
	r.mu.RLock()
	r.d.VolRead(t, r.wPub) // receive the last writer's publication
}

// RUnlock releases the read lock on behalf of thread t.
func (r *RWMutex) RUnlock(t ThreadID) {
	r.d.VolWrite(t, r.rPub) // publish to the next writer
	r.mu.RUnlock()
}
