package pacer_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"pacer"
)

func TestFullRateDetectsRace(t *testing.T) {
	var races []pacer.Race
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(r pacer.Race) { races = append(races, r) }})
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	v := d.NewVarID()
	d.Write(t0, v, 10)
	// t1's write is concurrent with t0's: fork ordered t1 after the fork
	// point but t0's write came after the fork.
	d.Write(t1, v, 20)
	if len(races) != 1 {
		t.Fatalf("races = %d, want 1", len(races))
	}
	if races[0].Kind != pacer.WriteWrite {
		t.Errorf("kind = %v", races[0].Kind)
	}
}

func TestZeroRateDetectsNothing(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 0, OnRace: func(r pacer.Race) { t.Errorf("unexpected race %v", r) }})
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	v := d.NewVarID()
	for i := 0; i < 1000; i++ {
		d.Write(t0, v, 1)
		d.Write(t1, v, 2)
	}
	s := d.Stats()
	if s.VarsTracked != 0 {
		t.Errorf("r=0 tracked %d variables", s.VarsTracked)
	}
	if s.FastPathWrites == 0 {
		t.Error("fast path never used")
	}
}

func TestMutexPreventsReports(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(r pacer.Race) { t.Errorf("false positive %v", r) }})
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	m := d.NewMutex()
	v := d.NewVarID()
	// Interleaved but lock-ordered accesses.
	m.Lock(t0)
	d.Write(t0, v, 1)
	m.Unlock(t0)
	m.Lock(t1)
	d.Write(t1, v, 2)
	m.Unlock(t1)
}

func TestSharedCellRaceFound(t *testing.T) {
	found := 0
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(pacer.Race) { found++ }})
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	c := pacer.NewShared(d, 0)
	c.Store(t0, 1, 41)
	if got := c.Load(t1, 2); got != 41 {
		t.Errorf("Load = %d, want 41", got)
	}
	if found != 1 {
		t.Errorf("races = %d, want 1 (unsynchronized store/load)", found)
	}
}

func TestSharedUpdate(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 0})
	t0 := d.NewThread()
	c := pacer.NewShared(d, 10)
	c.Update(t0, 1, func(x int) int { return x * 2 })
	if got := c.Load(t0, 2); got != 20 {
		t.Errorf("Update result = %d, want 20", got)
	}
}

func TestAtomicSynchronizes(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(r pacer.Race) { t.Errorf("false positive %v", r) }})
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	flag := pacer.NewAtomic(d, false)
	data := d.NewVarID()
	d.Write(t0, data, 1)
	flag.Store(t0, true)
	if !flag.Load(t1) {
		t.Fatal("atomic value lost")
	}
	d.Read(t1, data, 2) // ordered by the volatile: no race
}

func TestJoinSynchronizes(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(r pacer.Race) { t.Errorf("false positive %v", r) }})
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	v := d.NewVarID()
	d.Write(t1, v, 1)
	d.Join(t0, t1)
	d.Read(t0, v, 2)
}

// Sampling proportionality through the public API: the detection frequency
// of a one-shot race across many detector instances approximates the rate.
func TestSamplingRateProportionality(t *testing.T) {
	const rate = 0.25
	const trials = 400
	detected := 0
	for i := 0; i < trials; i++ {
		got := false
		d := pacer.New(pacer.Options{
			SamplingRate: rate,
			PeriodOps:    64,
			Seed:         int64(i + 1),
			OnRace:       func(pacer.Race) { got = true },
		})
		t0 := d.NewThread()
		t1 := d.Fork(t0)
		v := d.NewVarID()
		// Pad with unrelated work so the racy pair lands in a random
		// period.
		pad := d.NewVarID()
		for j := 0; j < 50+((i*37)%200); j++ {
			d.Read(t0, pad, 9)
		}
		d.Write(t0, v, 1)
		d.Write(t1, v, 2)
		if got {
			detected++
		}
	}
	p := float64(detected) / trials
	if p < rate*0.55 || p > rate*1.45 {
		t.Errorf("detection rate %.3f far from sampling rate %.2f", p, rate)
	}
}

// The public API is safe for concurrent use (run with -race).
func TestConcurrentUse(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 0.5, PeriodOps: 32})
	t0 := d.NewThread()
	var wg sync.WaitGroup
	m := d.NewMutex()
	c := pacer.NewShared(d, 0)
	for g := 0; g < 8; g++ {
		tid := d.Fork(t0)
		wg.Add(1)
		go func(tid pacer.ThreadID) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Lock(tid)
				c.Update(tid, 5, func(x int) int { return x + 1 })
				m.Unlock(tid)
			}
		}(tid)
	}
	wg.Wait()
	if got := c.Load(t0, 6); got != 8*500 {
		t.Errorf("counter = %d, want %d", got, 8*500)
	}
	s := d.Stats()
	if s.Reads == 0 || s.SyncOps == 0 {
		t.Error("stats not collected")
	}
}

func TestOptionsClamping(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 7}) // clamped to 1
	t0 := d.NewThread()
	v := d.NewVarID()
	d.Write(t0, v, 1)
	if d.Stats().VarsTracked != 1 {
		t.Error("rate not clamped to 1 (no tracking happened)")
	}
	d2 := pacer.New(pacer.Options{SamplingRate: -3}) // clamped to 0
	t2 := d2.NewThread()
	d2.Write(t2, v, 1)
	if d2.Stats().VarsTracked != 0 {
		t.Error("rate not clamped to 0")
	}
}

func TestIDAllocation(t *testing.T) {
	d := pacer.New(pacer.Options{})
	if a, b := d.NewVarID(), d.NewVarID(); a == b {
		t.Error("duplicate var ids")
	}
	if a, b := d.NewLockID(), d.NewLockID(); a == b {
		t.Error("duplicate lock ids")
	}
	if a, b := d.NewVolatileID(), d.NewVolatileID(); a == b {
		t.Error("duplicate volatile ids")
	}
	if a, b := d.NewThread(), d.NewThread(); a == b {
		t.Error("duplicate thread ids")
	}
}

func TestBudgetControllerThrottles(t *testing.T) {
	// An application that is almost pure detector work and a tiny budget:
	// the controller must throttle the rate far below the starting rate.
	d := pacer.New(pacer.Options{
		SamplingRate: 1.0,
		PeriodOps:    256,
		Budget:       pacer.BudgetOptions{TargetOverhead: 0.0001, MinRate: 0.001},
	})
	t0 := d.NewThread()
	t1 := d.Fork(t0)
	v := d.NewVarID()
	for i := 0; i < 50_000; i++ {
		d.Write(t0, v, 1)
		d.Read(t1, v, 2)
	}
	if r := d.CurrentRate(); r > 0.5 {
		t.Errorf("rate %.3f did not throttle under a tiny budget", r)
	}
	if d.ObservedOverhead() <= 0 {
		t.Error("overhead not measured")
	}
}

func TestBudgetControllerRespectsBounds(t *testing.T) {
	d := pacer.New(pacer.Options{
		SamplingRate: 0.05,
		PeriodOps:    64,
		Budget:       pacer.BudgetOptions{TargetOverhead: 0.0001, MinRate: 0.01, MaxRate: 0.2},
	})
	t0 := d.NewThread()
	v := d.NewVarID()
	for i := 0; i < 20_000; i++ {
		d.Write(t0, v, 1)
	}
	if r := d.CurrentRate(); r < 0.01 || r > 0.2 {
		t.Errorf("rate %.4f escaped [MinRate, MaxRate]", r)
	}
}

func TestDescribeWithLabels(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 1.0})
	v := d.NewVarID()
	d.VarLabel(v, "account.balance")
	d.SiteLabel(10, "deposit()")
	d.SiteLabel(20, "audit()")
	r := pacer.Race{Var: v, Kind: pacer.WriteRead, FirstThread: 0, SecondThread: 1, FirstSite: 10, SecondSite: 20}
	got := d.Describe(r)
	want := "data race on account.balance: write at deposit() (thread 0) vs read at audit() (thread 1)"
	if got != want {
		t.Errorf("Describe = %q\nwant %q", got, want)
	}
	// Unlabeled fall back to numeric identifiers.
	r2 := pacer.Race{Var: 99, Kind: pacer.WriteWrite, FirstSite: 1, SecondSite: 2}
	if got := d.Describe(r2); got != "data race on var 99: write at site 1 (thread 0) vs write at site 2 (thread 0)" {
		t.Errorf("fallback Describe = %q", got)
	}
}

func TestReuseThreadIDsKeepsWidthBounded(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 0.5, PeriodOps: 16, ReuseThreadIDs: true})
	main := d.NewThread()
	v := d.NewVarID()
	mu := d.NewMutex()
	seen := map[pacer.ThreadID]bool{main: true}
	for gen := 0; gen < 200; gen++ {
		w := d.Fork(main)
		seen[w] = true
		mu.Lock(w)
		d.Read(w, v, 1)
		d.Write(w, v, 2)
		mu.Unlock(w)
		d.Join(main, w)
		// Main touches the lock so its version epoch stops naming w.
		mu.Lock(main)
		mu.Unlock(main)
	}
	if len(seen) > 20 {
		t.Errorf("%d distinct thread ids across 200 generations; reuse ineffective", len(seen))
	}
}

func TestReuseThreadIDsStillDetectsRaces(t *testing.T) {
	found := 0
	d := pacer.New(pacer.Options{SamplingRate: 1.0, ReuseThreadIDs: true, OnRace: func(pacer.Race) { found++ }})
	main := d.NewThread()
	v := d.NewVarID()
	for gen := 0; gen < 10; gen++ {
		w := d.Fork(main)
		d.Write(w, v, pacer.SiteID(100+gen))
		d.Join(main, w)
	}
	// Each generation's write is ordered after the previous via main's
	// join+fork, so no races yet.
	if found != 0 {
		t.Fatalf("ordered generational writes raced (%d)", found)
	}
	// A concurrent writer races with the last generation.
	other := d.Fork(main)
	d.Write(other, v, 999)
	loner := d.NewThread() // root thread, concurrent with everything
	d.Write(loner, v, 1000)
	if found == 0 {
		t.Error("race with reused-slot thread missed")
	}
}

func TestWaitGroupOrdersWork(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(r pacer.Race) { t.Errorf("false positive %v", r) }})
	main := d.NewThread()
	wg := d.NewWaitGroup()
	v := d.NewVarID()
	var hwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		tid := d.Fork(main)
		wg.Add(1)
		hwg.Add(1)
		go func(tid pacer.ThreadID, i int) {
			defer hwg.Done()
			d.Write(tid, v+pacer.VarID(i+1), pacer.SiteID(i))
			wg.Done(tid)
		}(tid, i)
	}
	hwg.Wait()
	wg.Wait(main)
	for i := 0; i < 4; i++ {
		d.Read(main, v+pacer.VarID(i+1), 99) // ordered by the wait group
	}
}

func TestWaitGroupWithoutWaitStillRaces(t *testing.T) {
	races := 0
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(pacer.Race) { races++ }})
	main := d.NewThread()
	w := d.Fork(main)
	v := d.NewVarID()
	d.Write(w, v, 1)
	d.Read(main, v, 2) // no Wait: races
	if races != 1 {
		t.Fatalf("races = %d, want 1", races)
	}
}

func TestRWMutexSemantics(t *testing.T) {
	var mu sync.Mutex
	races := 0
	d := pacer.New(pacer.Options{SamplingRate: 1.0, OnRace: func(pacer.Race) {
		mu.Lock()
		races++
		mu.Unlock()
	}})
	main := d.NewThread()
	r1 := d.Fork(main)
	r2 := d.Fork(main)
	rw := d.NewRWMutex()
	data := d.NewVarID()

	// Writer publishes; readers consume under RLock: no races.
	rw.Lock(main)
	d.Write(main, data, 1)
	rw.Unlock(main)
	rw.RLock(r1)
	d.Read(r1, data, 2)
	rw.RUnlock(r1)
	rw.RLock(r2)
	d.Read(r2, data, 3)
	rw.RUnlock(r2)
	// A writer after the readers is ordered after their reads.
	rw.Lock(main)
	d.Write(main, data, 4)
	rw.Unlock(main)
	if races != 0 {
		t.Fatalf("rwmutex-ordered accesses raced %d times", races)
	}

	// A read outside any lock races with both the preceding and the next
	// write.
	d.Read(r1, data, 5)
	rw.Lock(main)
	d.Write(main, data, 6)
	rw.Unlock(main)
	if races != 2 {
		t.Fatalf("unprotected read: races = %d, want 2", races)
	}
}

func TestRWMutexConcurrentUse(t *testing.T) {
	d := pacer.New(pacer.Options{SamplingRate: 0.5, PeriodOps: 64})
	main := d.NewThread()
	rw := d.NewRWMutex()
	c := pacer.NewShared(d, 0)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		tid := d.Fork(main)
		wg.Add(1)
		go func(tid pacer.ThreadID, g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%3 == 0 {
					rw.Lock(tid)
					c.Update(tid, 1, func(x int) int { return x + 1 })
					rw.Unlock(tid)
				} else {
					rw.RLock(tid)
					c.Load(tid, 2)
					rw.RUnlock(tid)
				}
			}
		}(tid, g)
	}
	wg.Wait()
}

func TestAggregatorDedupAndCounts(t *testing.T) {
	agg := pacer.NewAggregator()
	r1 := agg.Reporter("host-1")
	r2 := agg.Reporter("host-2")
	race := pacer.Race{Var: 7, Kind: pacer.WriteWrite, FirstSite: 10, SecondSite: 20}
	flipped := pacer.Race{Var: 7, Kind: pacer.WriteWrite, FirstSite: 20, SecondSite: 10}
	other := pacer.Race{Var: 8, Kind: pacer.WriteRead, FirstSite: 30, SecondSite: 40}
	r1(race)
	r1(race)
	r2(flipped) // same distinct race, sites reversed
	r2(other)
	if agg.Distinct() != 2 {
		t.Fatalf("distinct = %d, want 2", agg.Distinct())
	}
	races := agg.Races()
	if races[0].Count != 3 || races[0].Instances != 2 || races[0].FirstInstance != "host-1" {
		t.Errorf("top race stats wrong: %+v", races[0])
	}
	if races[1].Count != 1 || races[1].Instances != 1 {
		t.Errorf("second race stats wrong: %+v", races[1])
	}
	if got := races[0].String(); !strings.Contains(got, "3 report(s) from 2 instance(s)") {
		t.Errorf("String = %q", got)
	}
}

func TestAggregatorAcrossFleet(t *testing.T) {
	// A fleet of low-rate instances aggregates to near-certain detection.
	agg := pacer.NewAggregator()
	const instances = 150
	var wg sync.WaitGroup
	for inst := 0; inst < instances; inst++ {
		wg.Add(1)
		go func(inst int) {
			defer wg.Done()
			d := pacer.New(pacer.Options{
				SamplingRate: 0.10,
				PeriodOps:    32,
				Seed:         int64(inst*2654435761 + 11),
				OnRace:       agg.Reporter(fmt.Sprintf("inst-%d", inst)),
			})
			t0 := d.NewThread()
			t1 := d.Fork(t0)
			v := d.NewVarID()
			pad := d.NewVarID()
			for j := 0; j < 40+(inst*13)%100; j++ {
				d.Read(t0, pad, 9)
			}
			d.Write(t0, v, 1)
			d.Write(t1, v, 2)
		}(inst)
	}
	wg.Wait()
	if agg.Distinct() != 1 {
		t.Fatalf("distinct = %d, want 1", agg.Distinct())
	}
	top := agg.Races()[0]
	// ~10% of 150 instances ≈ 15 expected; accept a broad band.
	if top.Instances < 4 || top.Instances > 40 {
		t.Errorf("fleet detection count %d outside plausible band", top.Instances)
	}
}
