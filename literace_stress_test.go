// Stress test for the sharded LITERACE mount: burst-sampled detection
// driven through the concurrent front-end, with the per-(method, thread)
// skip decisions consumed lock-free (detector.BurstSampler) on striped
// sampler locks. Run under `go test -race` (CI does) so the Go race
// detector audits the striped sampler state itself; the assertions check
// operation conservation across the burst-skip dismissals and the sharded
// slow path.
package pacer_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"pacer"
	"pacer/internal/event"
)

// TestLiteRaceShardedStressStatsConservation hammers a LITERACE-mounted
// detector from many goroutines through Apply (the only surface carrying a
// Method, which the burst sampler keys on) and checks that Stats sees
// exactly the issued operation counts: burst skips consumed lock-free, the
// skips decided on the locked path, and the analyzed accesses must sum to
// the issued totals with nothing lost or double-counted. Hot methods drain
// their bursts fast, so the lock-free skip must actually fire.
func TestLiteRaceShardedStressStatsConservation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arena bool
	}{{"heap", false}, {"arena", true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const goroutines = 8
			const opsPer = 4000
			d := pacer.New(pacer.Options{
				Algorithm: "literace",
				Seed:      9,
				Shards:    8,
				Arena:     tc.arena,
			})
			if d.ShardCount() != 8 {
				t.Fatalf("ShardCount = %d, want 8: LITERACE should mount sharded", d.ShardCount())
			}
			main := d.NewThread()
			shared := d.NewVarID()
			var issuedReads, issuedWrites atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				tid := d.Fork(main)
				wg.Add(1)
				go func(tid pacer.ThreadID, g int) {
					defer wg.Done()
					private := d.NewVarID()
					method := uint32(g % 3) // few hot methods: bursts drain, skips dominate
					for i := 0; i < opsPer; i++ {
						e := pacer.Event{
							Thread: tid,
							Site:   pacer.SiteID(g + 1),
							Method: method,
						}
						if i%16 == 0 { // race-prone shared write
							e.Kind, e.Target = event.Write, uint32(shared)
							issuedWrites.Add(1)
						} else {
							e.Kind, e.Target = event.Read, uint32(private)
							issuedReads.Add(1)
						}
						d.Apply(e)
					}
				}(tid, g)
			}
			wg.Wait()
			s := d.Stats()
			if s.Reads != issuedReads.Load() {
				t.Errorf("Stats.Reads = %d, issued %d", s.Reads, issuedReads.Load())
			}
			if s.Writes != issuedWrites.Load() {
				t.Errorf("Stats.Writes = %d, issued %d", s.Writes, issuedWrites.Load())
			}
			if s.FastPathReads == 0 {
				t.Error("lock-free burst skip never fired on a burst-drained workload")
			}
			if s.ArenaEnabled != tc.arena {
				t.Errorf("ArenaEnabled = %v, want %v", s.ArenaEnabled, tc.arena)
			}
		})
	}
}
