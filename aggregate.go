package pacer

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Aggregator collects race reports from many detector instances — the
// fleet side of the distributed-debugging deployment the paper envisions
// (Section 1): each deployed instance samples at a low rate, and the
// aggregator deduplicates their reports into a triage list. Reports are
// keyed by the unordered site pair — the paper's notion of a distinct
// race — refined by the access kinds, so a write–write and a read–write
// race between the same two sites triage separately.
//
// An Aggregator is safe for concurrent use by many instances.
type Aggregator struct {
	mu    sync.Mutex
	races map[aggKey]*AggregatedRace
}

type aggKey struct {
	v    VarID
	kind RaceKind
	a, b SiteID
}

// AggregatedRace is one distinct race with fleet-wide statistics.
type AggregatedRace struct {
	// Example is a representative report.
	Example Race
	// Count is the number of reports across all instances.
	Count int
	// Instances is the number of distinct instances that reported it.
	Instances int
	// FirstInstance identifies the instance that reported it first.
	FirstInstance string

	seen map[string]bool
}

// keyOf normalizes a report to its distinct-race key: variable, unordered
// site pair, and the kinds of the two accesses. The kind participates so a
// write–write and a read–write race on the same (var, site pair) stay
// separate triage entries. When the sites swap into canonical order the
// access-kind pair swaps with them (a write-read observed as s2-then-s1 is
// the read-write on (s1, s2)), so the two temporal orderings of one static
// race still collapse into a single entry. When both accesses come from
// the same site the swap never fires, so the mixed kinds are canonicalized
// directly — write-read and read-write at (s, s) are the same static race
// observed in the two temporal orders.
func keyOf(r Race) aggKey {
	a, b := r.FirstSite, r.SecondSite
	k := r.Kind
	if a > b {
		a, b = b, a
		switch k {
		case WriteRead:
			k = ReadWrite
		case ReadWrite:
			k = WriteRead
		}
	}
	if a == b && k == WriteRead {
		k = ReadWrite
	}
	return aggKey{v: r.Var, kind: k, a: a, b: b}
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{races: make(map[aggKey]*AggregatedRace)}
}

// Reporter returns an OnRace callback for one deployed instance. Wire it
// into that instance's Options:
//
//	agg := pacer.NewAggregator()
//	d := pacer.New(pacer.Options{SamplingRate: 0.01, OnRace: agg.Reporter("host-17")})
func (a *Aggregator) Reporter(instance string) func(Race) {
	return func(r Race) {
		a.mu.Lock()
		defer a.mu.Unlock()
		k := keyOf(r)
		ar, ok := a.races[k]
		if !ok {
			ar = &AggregatedRace{Example: r, FirstInstance: instance, seen: make(map[string]bool)}
			a.races[k] = ar
		}
		ar.Count++
		if !ar.seen[instance] {
			ar.seen[instance] = true
			ar.Instances++
		}
	}
}

// Distinct returns the number of distinct races reported so far.
func (a *Aggregator) Distinct() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.races)
}

// Races returns the aggregated races, most-reported first (ties broken by
// site pair for determinism).
func (a *Aggregator) Races() []AggregatedRace {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AggregatedRace, 0, len(a.races))
	for _, ar := range a.races {
		cp := *ar
		cp.seen = nil
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		ki, kj := keyOf(out[i].Example), keyOf(out[j].Example)
		if ki.a != kj.a {
			return ki.a < kj.a
		}
		if ki.b != kj.b {
			return ki.b < kj.b
		}
		return ki.kind < kj.kind
	})
	return out
}

// String summarizes an aggregated race.
func (r AggregatedRace) String() string {
	return fmt.Sprintf("%v — %d report(s) from %d instance(s), first seen on %s",
		r.Example, r.Count, r.Instances, r.FirstInstance)
}

// Merge folds every race aggregated by o into a: counts add, instance sets
// union, and a race first seen only by o keeps o's first reporter. Use it
// to combine per-region (or per-process) aggregators into one fleet-wide
// triage list. Merging two aggregators into each other concurrently can
// deadlock; merge in one direction at a time.
func (a *Aggregator) Merge(o *Aggregator) {
	if o == a || o == nil {
		return
	}
	// Snapshot o first so a's lock is never held while waiting on o's.
	o.mu.Lock()
	snap := make(map[aggKey]*AggregatedRace, len(o.races))
	for k, ar := range o.races {
		cp := *ar
		cp.seen = make(map[string]bool, len(ar.seen))
		for inst := range ar.seen {
			cp.seen[inst] = true
		}
		snap[k] = &cp
	}
	o.mu.Unlock()
	a.mergeSnapshot(snap)
}

// mergeSnapshot folds a private snapshot (the caller relinquishes
// ownership) into a: counts add, attributed instance sets union, and
// instance counts beyond the attributed set — possible only for imported
// entries, whose flat schema names just the first reporter — add through
// conservatively.
func (a *Aggregator) mergeSnapshot(snap map[aggKey]*AggregatedRace) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.races == nil {
		a.races = make(map[aggKey]*AggregatedRace, len(snap))
	}
	for k, src := range snap {
		dst, ok := a.races[k]
		if !ok {
			a.races[k] = src
			continue
		}
		dst.Count += src.Count
		extra := src.Instances - len(src.seen)
		for inst := range src.seen {
			if !dst.seen[inst] {
				dst.seen[inst] = true
				dst.Instances++
			}
		}
		if extra > 0 {
			dst.Instances += extra
		}
	}
}

// exportedRace is the persistence schema of one aggregated race: flat,
// versionable fields rather than internal identifier types, so triage
// tooling in any language can consume the export.
type exportedRace struct {
	Var           uint32 `json:"var"`
	Kind          string `json:"kind"`
	FirstSite     uint32 `json:"first_site"`
	SecondSite    uint32 `json:"second_site"`
	FirstThread   uint32 `json:"first_thread"`
	SecondThread  uint32 `json:"second_thread"`
	Count         int    `json:"count"`
	Instances     int    `json:"instances"`
	FirstInstance string `json:"first_instance"`
}

// Export returns the aggregated triage list, most-reported first — the
// same ordering as Races, as a snapshot safe to persist or ship to
// another process.
func (a *Aggregator) Export() []AggregatedRace { return a.Races() }

// MarshalJSON renders the triage list as a JSON array, most-reported
// first, in a flat schema (numeric ids plus a human-readable race kind)
// suitable for persistence and cross-fleet merging. An empty aggregator
// marshals to [].
func (a *Aggregator) MarshalJSON() ([]byte, error) {
	races := a.Races()
	out := make([]exportedRace, len(races))
	for i, ar := range races {
		out[i] = exportedRace{
			Var:           uint32(ar.Example.Var),
			Kind:          ar.Example.Kind.String(),
			FirstSite:     uint32(ar.Example.FirstSite),
			SecondSite:    uint32(ar.Example.SecondSite),
			FirstThread:   uint32(ar.Example.FirstThread),
			SecondThread:  uint32(ar.Example.SecondThread),
			Count:         ar.Count,
			Instances:     ar.Instances,
			FirstInstance: ar.FirstInstance,
		}
	}
	return json.Marshal(out)
}

// kindFromString inverts RaceKind.String for the persistence schema.
func kindFromString(s string) (RaceKind, error) {
	switch s {
	case "write-write":
		return WriteWrite, nil
	case "write-read":
		return WriteRead, nil
	case "read-write":
		return ReadWrite, nil
	}
	return 0, fmt.Errorf("pacer: unknown race kind %q", s)
}

// ImportJSON parses a triage list previously produced by MarshalJSON and
// merges it into a, the counterpart a collector needs to reconstruct
// remote aggregators from their wire exports. Counts add and an entry new
// to a keeps its exported first reporter. The flat schema attributes only
// the first reporting instance by name, so for an imported entry that a
// already holds, instances beyond the first add through by count; importing
// lists whose unattributed instance sets overlap can therefore overcount
// Instances. The fleet transport avoids this by keying pushes by instance
// (each instance's export names only itself).
//
// A round trip is exact: importing an export into a fresh aggregator
// reproduces the original Races() output.
func (a *Aggregator) ImportJSON(data []byte) error {
	var in []exportedRace
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("pacer: parsing triage list: %w", err)
	}
	snap := make(map[aggKey]*AggregatedRace, len(in))
	for i, er := range in {
		kind, err := kindFromString(er.Kind)
		if err != nil {
			return fmt.Errorf("pacer: triage entry %d: %w", i, err)
		}
		if er.Count < 1 || er.Instances < 1 || er.Instances > er.Count {
			return fmt.Errorf("pacer: triage entry %d has implausible count %d / instances %d",
				i, er.Count, er.Instances)
		}
		r := Race{
			Var:          VarID(er.Var),
			Kind:         kind,
			FirstThread:  ThreadID(er.FirstThread),
			SecondThread: ThreadID(er.SecondThread),
			FirstSite:    SiteID(er.FirstSite),
			SecondSite:   SiteID(er.SecondSite),
		}
		k := keyOf(r)
		dst, ok := snap[k]
		if !ok {
			dst = &AggregatedRace{
				Example:       r,
				FirstInstance: er.FirstInstance,
				seen:          map[string]bool{er.FirstInstance: true},
			}
			snap[k] = dst
			dst.Count = er.Count
			dst.Instances = er.Instances
			continue
		}
		// Duplicate keys cannot come from MarshalJSON but a hand-edited
		// list may carry them; fold rather than reject.
		dst.Count += er.Count
		dst.Instances += er.Instances
		if dst.seen[er.FirstInstance] {
			dst.Instances-- // its first reporter was already counted
		} else {
			dst.seen[er.FirstInstance] = true
		}
	}
	a.mergeSnapshot(snap)
	return nil
}

// UnmarshalJSON implements json.Unmarshaler as ImportJSON: the parsed
// triage list merges into the receiver's existing state (on a fresh
// aggregator that is a plain load).
func (a *Aggregator) UnmarshalJSON(data []byte) error {
	return a.ImportJSON(data)
}
