package pacer

import (
	"fmt"
	"sort"
	"sync"
)

// Aggregator collects race reports from many detector instances — the
// fleet side of the distributed-debugging deployment the paper envisions
// (Section 1): each deployed instance samples at a low rate, and the
// aggregator deduplicates their reports into a triage list. Reports are
// keyed by the unordered site pair, the paper's notion of a distinct race.
//
// An Aggregator is safe for concurrent use by many instances.
type Aggregator struct {
	mu    sync.Mutex
	races map[aggKey]*AggregatedRace
}

type aggKey struct {
	v    VarID
	a, b SiteID
}

// AggregatedRace is one distinct race with fleet-wide statistics.
type AggregatedRace struct {
	// Example is a representative report.
	Example Race
	// Count is the number of reports across all instances.
	Count int
	// Instances is the number of distinct instances that reported it.
	Instances int
	// FirstInstance identifies the instance that reported it first.
	FirstInstance string

	seen map[string]bool
}

func keyOf(r Race) aggKey {
	a, b := r.FirstSite, r.SecondSite
	if a > b {
		a, b = b, a
	}
	return aggKey{v: r.Var, a: a, b: b}
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{races: make(map[aggKey]*AggregatedRace)}
}

// Reporter returns an OnRace callback for one deployed instance. Wire it
// into that instance's Options:
//
//	agg := pacer.NewAggregator()
//	d := pacer.New(pacer.Options{SamplingRate: 0.01, OnRace: agg.Reporter("host-17")})
func (a *Aggregator) Reporter(instance string) func(Race) {
	return func(r Race) {
		a.mu.Lock()
		defer a.mu.Unlock()
		k := keyOf(r)
		ar, ok := a.races[k]
		if !ok {
			ar = &AggregatedRace{Example: r, FirstInstance: instance, seen: make(map[string]bool)}
			a.races[k] = ar
		}
		ar.Count++
		if !ar.seen[instance] {
			ar.seen[instance] = true
			ar.Instances++
		}
	}
}

// Distinct returns the number of distinct races reported so far.
func (a *Aggregator) Distinct() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.races)
}

// Races returns the aggregated races, most-reported first (ties broken by
// site pair for determinism).
func (a *Aggregator) Races() []AggregatedRace {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AggregatedRace, 0, len(a.races))
	for _, ar := range a.races {
		cp := *ar
		cp.seen = nil
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		ki, kj := keyOf(out[i].Example), keyOf(out[j].Example)
		if ki.a != kj.a {
			return ki.a < kj.a
		}
		return ki.b < kj.b
	})
	return out
}

// String summarizes an aggregated race.
func (r AggregatedRace) String() string {
	return fmt.Sprintf("%v — %d report(s) from %d instance(s), first seen on %s",
		r.Example, r.Count, r.Instances, r.FirstInstance)
}
