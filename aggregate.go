package pacer

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Aggregator collects race reports from many detector instances — the
// fleet side of the distributed-debugging deployment the paper envisions
// (Section 1): each deployed instance samples at a low rate, and the
// aggregator deduplicates their reports into a triage list. Reports are
// keyed by the unordered site pair, the paper's notion of a distinct race.
//
// An Aggregator is safe for concurrent use by many instances.
type Aggregator struct {
	mu    sync.Mutex
	races map[aggKey]*AggregatedRace
}

type aggKey struct {
	v    VarID
	a, b SiteID
}

// AggregatedRace is one distinct race with fleet-wide statistics.
type AggregatedRace struct {
	// Example is a representative report.
	Example Race
	// Count is the number of reports across all instances.
	Count int
	// Instances is the number of distinct instances that reported it.
	Instances int
	// FirstInstance identifies the instance that reported it first.
	FirstInstance string

	seen map[string]bool
}

func keyOf(r Race) aggKey {
	a, b := r.FirstSite, r.SecondSite
	if a > b {
		a, b = b, a
	}
	return aggKey{v: r.Var, a: a, b: b}
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{races: make(map[aggKey]*AggregatedRace)}
}

// Reporter returns an OnRace callback for one deployed instance. Wire it
// into that instance's Options:
//
//	agg := pacer.NewAggregator()
//	d := pacer.New(pacer.Options{SamplingRate: 0.01, OnRace: agg.Reporter("host-17")})
func (a *Aggregator) Reporter(instance string) func(Race) {
	return func(r Race) {
		a.mu.Lock()
		defer a.mu.Unlock()
		k := keyOf(r)
		ar, ok := a.races[k]
		if !ok {
			ar = &AggregatedRace{Example: r, FirstInstance: instance, seen: make(map[string]bool)}
			a.races[k] = ar
		}
		ar.Count++
		if !ar.seen[instance] {
			ar.seen[instance] = true
			ar.Instances++
		}
	}
}

// Distinct returns the number of distinct races reported so far.
func (a *Aggregator) Distinct() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.races)
}

// Races returns the aggregated races, most-reported first (ties broken by
// site pair for determinism).
func (a *Aggregator) Races() []AggregatedRace {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AggregatedRace, 0, len(a.races))
	for _, ar := range a.races {
		cp := *ar
		cp.seen = nil
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		ki, kj := keyOf(out[i].Example), keyOf(out[j].Example)
		if ki.a != kj.a {
			return ki.a < kj.a
		}
		return ki.b < kj.b
	})
	return out
}

// String summarizes an aggregated race.
func (r AggregatedRace) String() string {
	return fmt.Sprintf("%v — %d report(s) from %d instance(s), first seen on %s",
		r.Example, r.Count, r.Instances, r.FirstInstance)
}

// Merge folds every race aggregated by o into a: counts add, instance sets
// union, and a race first seen only by o keeps o's first reporter. Use it
// to combine per-region (or per-process) aggregators into one fleet-wide
// triage list. Merging two aggregators into each other concurrently can
// deadlock; merge in one direction at a time.
func (a *Aggregator) Merge(o *Aggregator) {
	if o == a || o == nil {
		return
	}
	// Snapshot o first so a's lock is never held while waiting on o's.
	o.mu.Lock()
	snap := make(map[aggKey]*AggregatedRace, len(o.races))
	for k, ar := range o.races {
		cp := *ar
		cp.seen = make(map[string]bool, len(ar.seen))
		for inst := range ar.seen {
			cp.seen[inst] = true
		}
		snap[k] = &cp
	}
	o.mu.Unlock()

	a.mu.Lock()
	defer a.mu.Unlock()
	for k, src := range snap {
		dst, ok := a.races[k]
		if !ok {
			a.races[k] = src
			continue
		}
		dst.Count += src.Count
		for inst := range src.seen {
			if !dst.seen[inst] {
				dst.seen[inst] = true
				dst.Instances++
			}
		}
	}
}

// exportedRace is the persistence schema of one aggregated race: flat,
// versionable fields rather than internal identifier types, so triage
// tooling in any language can consume the export.
type exportedRace struct {
	Var           uint32 `json:"var"`
	Kind          string `json:"kind"`
	FirstSite     uint32 `json:"first_site"`
	SecondSite    uint32 `json:"second_site"`
	FirstThread   uint32 `json:"first_thread"`
	SecondThread  uint32 `json:"second_thread"`
	Count         int    `json:"count"`
	Instances     int    `json:"instances"`
	FirstInstance string `json:"first_instance"`
}

// Export returns the aggregated triage list, most-reported first — the
// same ordering as Races, as a snapshot safe to persist or ship to
// another process.
func (a *Aggregator) Export() []AggregatedRace { return a.Races() }

// MarshalJSON renders the triage list as a JSON array, most-reported
// first, in a flat schema (numeric ids plus a human-readable race kind)
// suitable for persistence and cross-fleet merging. An empty aggregator
// marshals to [].
func (a *Aggregator) MarshalJSON() ([]byte, error) {
	races := a.Races()
	out := make([]exportedRace, len(races))
	for i, ar := range races {
		out[i] = exportedRace{
			Var:           uint32(ar.Example.Var),
			Kind:          ar.Example.Kind.String(),
			FirstSite:     uint32(ar.Example.FirstSite),
			SecondSite:    uint32(ar.Example.SecondSite),
			FirstThread:   uint32(ar.Example.FirstThread),
			SecondThread:  uint32(ar.Example.SecondThread),
			Count:         ar.Count,
			Instances:     ar.Instances,
			FirstInstance: ar.FirstInstance,
		}
	}
	return json.Marshal(out)
}
